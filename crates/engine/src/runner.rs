//! The parallel sweep executor.
//!
//! Expands a [`SweepSpec`] into scenarios (DAG × failure model) and
//! cells (scenario × estimator), then runs:
//!
//! 1. **Reference phase** — one Monte-Carlo reference per scenario,
//!    cells distributed over all cores (work-stealing chunks via the
//!    parallel-iterator layer), each consulting the content-addressed
//!    [`ResultCache`] first.
//! 2. **Cell phase** — every estimator cell in parallel, again
//!    cache-first. Completions stream through a dedicated writer thread
//!    that re-sequences them into deterministic cell order and feeds
//!    the sinks row by row while later cells are still computing.
//!
//! Determinism: cell seeds derive from the spec seed and the cell's
//! content (DAG hash, λ, estimator id) — never from position or time —
//! so a re-run, a resumed run, and a differently-parallel run all
//! produce byte-identical sink output.

use crate::cache::{cell_key, ResultCache};
use crate::keys::{mix, StableHasher};
use crate::registry::EstimatorRegistry;
use crate::sink::{summarize, Reorderer, ResultSink, SummaryRow, SweepRow};
use crate::spec::{DagInstance, SweepSpec};
use rayon::prelude::*;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use stochdag_core::{Estimate, Estimator, FailureModel, MonteCarloEstimator};
use stochdag_dag::structural_hash;

/// One (DAG, failure model) scenario.
struct Scenario<'a> {
    dag: &'a DagInstance,
    dag_hash: u128,
    model: FailureModel,
    label: String,
    reference: Estimate,
}

/// Outcome of a finished sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Every cell row, in deterministic cell order.
    pub rows: Vec<SweepRow>,
    /// Per-estimator aggregates.
    pub summary: Vec<SummaryRow>,
    /// Number of estimator cells (excludes references).
    pub cells: usize,
    /// Number of Monte-Carlo reference scenarios.
    pub references: usize,
    /// Cache hits across references + cells.
    pub cache_hits: usize,
    /// Cache misses (computed fresh) across references + cells.
    pub cache_misses: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
}

impl SweepOutcome {
    /// Whether every unit of work was served from the cache.
    pub fn fully_cached(&self) -> bool {
        self.cache_misses == 0
    }
}

/// Derive the deterministic seed of a work unit from the spec seed and
/// the unit's content identity. Masked to 53 bits so seeds survive the
/// JSON number model (JSONL rows, cached payloads) exactly.
fn derive_seed(spec_seed: u64, dag_hash: u128, lambda: f64, unit: &str) -> u64 {
    let mut h = StableHasher::new("stochdag-seed");
    h.write_u64(spec_seed)
        .write_u128(dag_hash)
        .write_f64(lambda)
        .write_str(unit);
    mix(h.finish() as u64) & ((1u64 << 53) - 1)
}

/// Run a sweep, streaming rows into `sinks` (all sinks receive every
/// row, in order). Returns the collected outcome.
pub fn run_sweep(
    spec: &SweepSpec,
    registry: &EstimatorRegistry,
    cache: &ResultCache,
    sinks: &mut [&mut dyn ResultSink],
) -> Result<SweepOutcome, String> {
    let start = Instant::now();
    spec.validate()?;
    // Resolve estimator ids up front so bad specs fail before any work.
    let estimator_ids: Vec<(String, String)> = spec
        .estimators
        .iter()
        .map(|s| registry.canonical_id(s).map(|id| (s.clone(), id)))
        .collect::<Result<_, _>>()?;
    {
        let mut ids: Vec<&str> = estimator_ids.iter().map(|(_, id)| id.as_str()).collect();
        ids.sort_unstable();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(format!(
                    "duplicate estimator {:?} in spec (canonical ids must be unique)",
                    pair[0]
                ));
            }
        }
    }
    cache.reset_counters();

    // Materialize DAG instances and hash each once.
    let mut instances: Vec<DagInstance> = Vec::new();
    for d in &spec.dags {
        instances.extend(d.materialize()?);
    }
    {
        let mut ids: Vec<&str> = instances.iter().map(|i| i.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != instances.len() {
            return Err("duplicate DAG instances in spec".into());
        }
    }
    // The exhaustive oracle panics past its node cap; surface that as
    // a spec error before any cell launches.
    if estimator_ids.iter().any(|(_, id)| id == "exact") {
        for inst in &instances {
            if inst.dag.node_count() > stochdag_core::MAX_EXACT_NODES {
                return Err(format!(
                    "estimator \"exact\" needs <= {} tasks, but {} has {}",
                    stochdag_core::MAX_EXACT_NODES,
                    inst.id,
                    inst.dag.node_count()
                ));
            }
        }
    }
    let hashes: Vec<u128> = instances.iter().map(|i| structural_hash(&i.dag)).collect();

    // Scenario skeletons: (instance, model, label) pairs.
    let proto: Vec<(usize, FailureModel, String)> = instances
        .iter()
        .enumerate()
        .flat_map(|(i, inst)| {
            let pfails = spec.pfails.iter().map(move |&p| {
                (
                    FailureModel::from_pfail_for_dag(p, &inst.dag),
                    format!("pfail={p}"),
                )
            });
            let lambdas = spec
                .lambdas
                .iter()
                .map(|&l| (FailureModel::new(l), format!("lambda={l}")));
            pfails
                .chain(lambdas)
                .map(move |(m, label)| (i, m, label))
                .collect::<Vec<_>>()
        })
        .collect();

    // Phase 1: Monte-Carlo references, parallel and cache-first.
    let reference_id = format!(
        "mc-reference:{}:{}",
        spec.reference_trials,
        match spec.reference_sampling {
            stochdag_core::SamplingModel::Geometric => "geometric",
            stochdag_core::SamplingModel::TwoState => "two-state",
        }
    );
    let references: Vec<Estimate> = (0..proto.len())
        .into_par_iter()
        .map(|s| {
            let (inst_idx, model, _) = &proto[s];
            let dag_hash = hashes[*inst_idx];
            let seed = derive_seed(spec.seed, dag_hash, model.lambda, &reference_id);
            let key = cell_key(dag_hash, model.lambda, &reference_id, seed);
            if let Some(found) = cache.lookup(&key) {
                return found;
            }
            let est = MonteCarloEstimator::new(spec.reference_trials)
                .with_seed(seed)
                .with_sampling(spec.reference_sampling)
                .estimate(&instances[*inst_idx].dag, model);
            cache.store(&key, &est);
            est
        })
        .collect();

    let scenarios: Vec<Scenario<'_>> = proto
        .into_iter()
        .zip(references)
        .map(|((inst_idx, model, label), reference)| Scenario {
            dag: &instances[inst_idx],
            dag_hash: hashes[inst_idx],
            model,
            label,
            reference,
        })
        .collect();

    // Phase 2: estimator cells, parallel, streaming into the sinks.
    let n_cells = scenarios.len() * estimator_ids.len();
    for sink in sinks.iter_mut() {
        sink.begin().map_err(|e| format!("sink begin: {e}"))?;
    }
    let (tx, rx) = mpsc::channel::<(usize, SweepRow)>();
    let tx = Mutex::new(tx);
    let write_error: Mutex<Option<String>> = Mutex::new(None);
    let rows: Vec<SweepRow> = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut reorder = Reorderer::new();
            let mut rows: Vec<SweepRow> = Vec::with_capacity(n_cells);
            for (idx, row) in rx {
                let emit_result = reorder.push(idx, row, |r| {
                    // Collect first: a sink failure aborts the sweep
                    // with an error, but the row set stays complete.
                    rows.push(r.clone());
                    for sink in sinks.iter_mut() {
                        sink.row(r)?;
                    }
                    Ok(())
                });
                if let Err(e) = emit_result {
                    let mut slot = write_error.lock().expect("error slot poisoned");
                    if slot.is_none() {
                        *slot = Some(format!("sink row: {e}"));
                    }
                }
            }
            debug_assert_eq!(reorder.pending(), 0, "all cells completed");
            rows
        });

        (0..n_cells).into_par_iter().for_each(|cell| {
            let scenario = &scenarios[cell / estimator_ids.len()];
            let (spec_str, canonical) = &estimator_ids[cell % estimator_ids.len()];
            let lambda = scenario.model.lambda;
            let seed = derive_seed(spec.seed, scenario.dag_hash, lambda, canonical);
            let key = cell_key(scenario.dag_hash, lambda, canonical, seed);
            let est = match cache.lookup(&key) {
                Some(found) => found,
                None => {
                    let built = registry
                        .build(spec_str, seed)
                        .expect("estimator specs validated before launch");
                    let est = built.estimate(&scenario.dag.dag, &scenario.model);
                    cache.store(&key, &est);
                    est
                }
            };
            let reference = scenario.reference.value;
            let row = SweepRow {
                dag: scenario.dag.id.clone(),
                tasks: scenario.dag.dag.node_count(),
                edges: scenario.dag.dag.edge_count(),
                model: scenario.label.clone(),
                lambda,
                estimator: canonical.clone(),
                value: est.value,
                reference,
                reference_std_error: scenario.reference.std_error.unwrap_or(0.0),
                rel_error: (est.value - reference) / reference,
                elapsed_s: est.elapsed.as_secs_f64(),
                seed,
            };
            tx.lock()
                .expect("sender poisoned")
                .send((cell, row))
                .expect("writer alive until senders drop");
        });
        drop(tx);
        writer.join().expect("writer thread panicked")
    });
    if let Some(e) = write_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }

    let summary = summarize(&rows);
    for sink in sinks.iter_mut() {
        sink.summary(&summary)
            .and_then(|()| sink.finish())
            .map_err(|e| format!("sink summary: {e}"))?;
    }
    Ok(SweepOutcome {
        cells: n_cells,
        references: scenarios.len(),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        wall: start.elapsed(),
        rows,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use crate::spec::DagSpec;
    use stochdag_taskgraphs::FactorizationClass;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny".into(),
            seed: 1,
            pfails: vec![0.01, 0.001],
            lambdas: vec![],
            estimators: vec!["first-order".into(), "sculli".into()],
            reference_trials: 1500,
            reference_sampling: stochdag_core::SamplingModel::Geometric,
            dags: vec![
                DagSpec::Factorization {
                    class: FactorizationClass::Cholesky,
                    ks: vec![2, 3],
                },
                DagSpec::ForkJoin {
                    width: 3,
                    depth: 2,
                    weight: 1.0,
                },
            ],
        }
    }

    #[test]
    fn sweep_runs_all_cells_in_order() {
        let spec = tiny_spec();
        let registry = EstimatorRegistry::standard();
        let cache = ResultCache::in_memory();
        let mut sink = VecSink::default();
        let outcome = {
            let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut sink];
            run_sweep(&spec, &registry, &cache, &mut sinks).unwrap()
        };
        // 3 DAG instances × 2 pfails × 2 estimators.
        assert_eq!(outcome.cells, 12);
        assert_eq!(outcome.references, 6);
        assert_eq!(outcome.rows.len(), 12);
        assert_eq!(sink.rows, outcome.rows, "sink saw the same ordered rows");
        // Deterministic order: scenario-major.
        assert_eq!(outcome.rows[0].dag, "cholesky:k=2");
        assert_eq!(outcome.rows[0].estimator, "first-order");
        assert_eq!(outcome.rows[1].estimator, "sculli");
        // Estimates are sane.
        for r in &outcome.rows {
            assert!(r.value > 0.0 && r.reference > 0.0);
            assert!(r.rel_error.abs() < 0.5, "{r:?}");
        }
        assert_eq!(outcome.summary.len(), 2);
    }

    #[test]
    fn repeated_run_is_fully_cached_and_identical() {
        let spec = tiny_spec();
        let registry = EstimatorRegistry::standard();
        let cache = ResultCache::in_memory();
        let run = |cache: &ResultCache| {
            let mut sink = VecSink::default();
            let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut sink];
            run_sweep(&spec, &registry, cache, &mut sinks).unwrap()
        };
        let first = run(&cache);
        assert!(!first.fully_cached());
        let second = run(&cache);
        assert!(second.fully_cached(), "second run must be 100% cache hits");
        assert_eq!(second.cache_hits, first.cells + first.references);
        assert_eq!(second.rows, first.rows, "cached rows are bit-identical");
    }

    #[test]
    fn seeds_differ_across_cells_but_not_runs() {
        let a = derive_seed(1, 42, 0.01, "first-order");
        assert_eq!(a, derive_seed(1, 42, 0.01, "first-order"));
        assert_ne!(a, derive_seed(1, 42, 0.01, "sculli"));
        assert_ne!(a, derive_seed(1, 43, 0.01, "first-order"));
        assert_ne!(a, derive_seed(2, 42, 0.01, "first-order"));
    }

    #[test]
    fn bad_estimator_fails_before_work() {
        let mut spec = tiny_spec();
        spec.estimators.push("warp-drive".into());
        let registry = EstimatorRegistry::standard();
        let cache = ResultCache::in_memory();
        let mut sinks: Vec<&mut dyn ResultSink> = vec![];
        let err = run_sweep(&spec, &registry, &cache, &mut sinks).unwrap_err();
        assert!(err.contains("warp-drive"), "{err}");
        assert_eq!(cache.hits() + cache.misses(), 0, "no work was attempted");
    }
}
