//! Campaign expansion and the shared cell-evaluation machinery.
//!
//! This module holds the *engine room* every execution path shares:
//!
//! * [`expand`] — validate a [`SweepSpec`] and expand it into DAG
//!   instances, per-instance failure models, and canonical estimator
//!   ids. Every entry point (in-process, sharded, resume reports,
//!   dry runs) derives the identical cell universe from this one
//!   function.
//! * [`derive_seed`] / [`cell_index`] / [`evaluate_unit`] /
//!   [`make_row`] — the deterministic identities and cache-first
//!   evaluation shared by the in-process and multi-process backends;
//!   the distributed byte-identity guarantee depends on both paths
//!   computing cells through these exact definitions.
//! * [`resume_report_impl`] — diff a spec against the cache without
//!   computing anything.
//!
//! The public entry points live on [`Campaign`](crate::Campaign); the
//! deprecated free-function wrappers (`run_sweep`, `resume_report`,
//! `sharded_resume_report`) that once shadowed them have been removed
//! (see the README's migration notes).

use crate::cache::{cell_key, CacheTier, ResultCache};
use crate::error::EngineError;
use crate::keys::{mix, StableHasher};
use crate::registry::EstimatorRegistry;
use crate::sink::{SummaryRow, SweepRow};
use crate::spec::{DagInstance, SweepSpec};
use crate::telemetry::Telemetry;
use std::time::{Duration, Instant};
use stochdag_core::{Estimate, EstimatorSpec, FailureModel, PreparedEstimator, ScenarioModel};
use stochdag_dag::{structural_hash, PreparedDag};

/// Outcome of a finished sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Every cell row, in deterministic cell order.
    pub rows: Vec<SweepRow>,
    /// Per-estimator aggregates.
    pub summary: Vec<SummaryRow>,
    /// Number of estimator cells (excludes references).
    pub cells: usize,
    /// Number of Monte-Carlo reference scenarios.
    pub references: usize,
    /// Cache hits across references + cells.
    pub cache_hits: usize,
    /// Cache misses (computed fresh) across references + cells.
    pub cache_misses: usize,
    /// Cells computed fresh (no cache tier had them). Cell-only and
    /// deduplicated by global index, so — unlike `cache_hits`, which
    /// includes per-shard reference probes — this is invariant across
    /// backends and worker counts.
    pub cells_computed: usize,
    /// Cells served by the in-memory cache tier (deduplicated).
    pub cells_memory_hits: usize,
    /// Cells served by the on-disk cache tier (deduplicated).
    pub cells_disk_hits: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
}

impl SweepOutcome {
    /// Whether every unit of work was served from the cache.
    pub fn fully_cached(&self) -> bool {
        self.cache_misses == 0
    }
}

/// Derive the deterministic seed of a work unit from the spec seed and
/// the unit's content identity. Masked to 53 bits so seeds survive the
/// JSON number model (JSONL rows, cached payloads) exactly.
pub(crate) fn derive_seed(spec_seed: u64, dag_hash: u128, lambda: f64, unit: &str) -> u64 {
    let mut h = StableHasher::new("stochdag-seed");
    h.write_u64(spec_seed)
        .write_u128(dag_hash)
        .write_f64(lambda)
        .write_str(unit);
    mix(h.finish() as u64) & ((1u64 << 53) - 1)
}

/// One entry of a campaign's model axis: a base failure model crossed
/// with one (possibly i.i.d.) failure scenario.
///
/// `unit_suffix` is the cache/seed identity of the scenario axis: empty
/// for i.i.d. entries — so every pre-scenario cell key stays
/// byte-identical, and `scenarios = ["iid"]` equals an absent axis —
/// and `"|rack:4:0.05:2"`-style otherwise, appended to both the
/// estimator's and the reference's unit string before
/// [`derive_seed`]/[`cell_key`](crate::cache::cell_key).
pub(crate) struct SweepModel {
    /// The base (marginal) failure model.
    pub(crate) model: FailureModel,
    /// Resolved correlation structure (i.i.d. when the axis is absent).
    pub(crate) scenario: ScenarioModel,
    /// Row label: `"pfail=0.01"`, or `"pfail=0.01|rack:4:0.05:2"`.
    pub(crate) label: String,
    /// `""` for i.i.d., `"|{scenario_id}"` otherwise.
    pub(crate) unit_suffix: String,
}

impl SweepModel {
    /// The full unit string of this entry for estimator/reference id
    /// `base` — what seeds and cache keys are derived from.
    pub(crate) fn unit(&self, base: &str) -> String {
        format!("{base}{}", self.unit_suffix)
    }
}

/// A validated, fully-expanded campaign — the shared front half of
/// every execution and reporting path.
pub(crate) struct Expansion {
    /// `(typed spec, canonical id)` per estimator, in spec order.
    pub(crate) estimator_ids: Vec<(EstimatorSpec, String)>,
    /// Materialized DAG instances, in spec order.
    pub(crate) instances: Vec<DagInstance>,
    /// Per-instance model entries: base models (pfails first, then
    /// lambdas — the pfail calibration depends on the instance's mean
    /// task weight) crossed with the scenario axis, scenarios fastest.
    pub(crate) models: Vec<Vec<SweepModel>>,
    /// Canonical id of the Monte-Carlo reference configuration.
    pub(crate) reference_id: String,
}

/// Deterministic global index of a cell: scenario-major, estimator
/// fastest. The single source of truth shared by the in-process runner
/// and the shard executor — the coordinator's re-sequencing key.
pub(crate) fn cell_index(i: usize, m: usize, e: usize, m_count: usize, e_count: usize) -> usize {
    (i * m_count + m) * e_count + e
}

pub(crate) fn expand(
    spec: &SweepSpec,
    registry: &EstimatorRegistry,
) -> Result<Expansion, EngineError> {
    spec.validate()?;
    // Resolve estimator ids up front so bad specs fail before any work.
    let estimator_ids: Vec<(EstimatorSpec, String)> = spec
        .estimators
        .iter()
        .map(|est| {
            registry.build(est, 0)?; // constructors are cheap; reject bad knobs here
            Ok((est.clone(), est.to_string()))
        })
        .collect::<Result<_, EngineError>>()?;
    {
        let mut ids: Vec<&str> = estimator_ids.iter().map(|(_, id)| id.as_str()).collect();
        ids.sort_unstable();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(EngineError::spec(format!(
                    "duplicate estimator {:?} in spec (canonical ids must be unique)",
                    pair[0]
                )));
            }
        }
    }
    let mut instances: Vec<DagInstance> = Vec::new();
    for d in &spec.dags {
        instances.extend(d.materialize()?);
    }
    {
        let mut ids: Vec<&str> = instances.iter().map(|i| i.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != instances.len() {
            return Err(EngineError::spec("duplicate DAG instances in spec"));
        }
    }
    // The exhaustive oracle panics past its node cap; surface that as
    // a spec error before any cell launches.
    if estimator_ids
        .iter()
        .any(|(est, _)| matches!(est, EstimatorSpec::Exact))
    {
        for inst in &instances {
            if inst.dag.node_count() > stochdag_core::MAX_EXACT_NODES {
                return Err(EngineError::spec(format!(
                    "estimator \"exact\" needs <= {} tasks, but {} has {}",
                    stochdag_core::MAX_EXACT_NODES,
                    inst.id,
                    inst.dag.node_count()
                )));
            }
        }
    }
    // Resolve each scenario against each instance once (rack striping
    // and bursty windows depend on the graph), then cross the base
    // models with the scenario axis — base-model-major, scenarios
    // fastest. An absent axis is the single implicit i.i.d. entry with
    // an empty unit suffix, which keeps every pre-scenario cache key
    // byte-identical.
    let scenario_axis: Vec<(stochdag_workload::ScenarioSpec, String)> =
        spec.scenarios.iter().map(|s| (*s, s.to_string())).collect();
    let models: Vec<Vec<SweepModel>> = instances
        .iter()
        .map(|inst| {
            let resolved: Vec<(ScenarioModel, String)> = if scenario_axis.is_empty() {
                vec![(ScenarioModel::Iid, String::new())]
            } else {
                scenario_axis
                    .iter()
                    .map(|(s, id)| {
                        let model = s.resolve(&inst.dag).map_err(|e| {
                            EngineError::spec(format!("scenario {id} on {}: {e}", inst.id))
                        })?;
                        let suffix = if s.is_iid() {
                            String::new()
                        } else {
                            format!("|{id}")
                        };
                        Ok((model, suffix))
                    })
                    .collect::<Result<_, EngineError>>()?
            };
            let base: Vec<(FailureModel, String)> = spec
                .pfails
                .iter()
                .map(|&p| {
                    (
                        FailureModel::from_pfail_for_dag(p, &inst.dag),
                        format!("pfail={p}"),
                    )
                })
                .chain(
                    spec.lambdas
                        .iter()
                        .map(|&l| (FailureModel::new(l), format!("lambda={l}"))),
                )
                .collect();
            Ok(base
                .into_iter()
                .flat_map(|(model, label)| {
                    resolved.iter().map(move |(scenario, suffix)| SweepModel {
                        model,
                        scenario: scenario.clone(),
                        label: format!("{label}{suffix}"),
                        unit_suffix: suffix.clone(),
                    })
                })
                .collect())
        })
        .collect::<Result<_, EngineError>>()?;
    let reference_id = format!(
        "mc-reference:{}:{}",
        spec.reference_trials,
        match spec.reference_sampling {
            stochdag_core::SamplingModel::Geometric => "geometric",
            stochdag_core::SamplingModel::TwoState => "two-state",
        }
    );
    Ok(Expansion {
        estimator_ids,
        instances,
        models,
        reference_id,
    })
}

/// RAII guard of the campaign worker-thread cap (`--jobs`).
///
/// `jobs = N` caps the worker threads for a campaign. Like real rayon's
/// global pool, the cap is process-wide while it is in effect; the
/// previous value is restored when the guard drops (on every exit
/// path), and capped campaigns are serialized against each other so
/// concurrent save/restore pairs cannot interleave and strand a stale
/// cap.
pub(crate) struct JobsCap {
    // Declaration order matters: the cap restorer is declared first so
    // the cap is restored (fields drop in declaration order) before the
    // serialization lock releases and the next capped campaign may
    // proceed.
    _restore: Option<CapRestore>,
    _serial: Option<std::sync::MutexGuard<'static, ()>>,
}

struct CapRestore(usize);

impl Drop for CapRestore {
    fn drop(&mut self) {
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(self.0)
            .build_global();
    }
}

static CAPPED_CAMPAIGNS: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Apply a worker-thread cap for the lifetime of the returned guard
/// (`None` = leave the pool uncapped; shared by the in-process and
/// shard executors).
pub(crate) fn apply_jobs_cap(jobs: Option<usize>) -> Result<JobsCap, EngineError> {
    match jobs {
        None => Ok(JobsCap {
            _restore: None,
            _serial: None,
        }),
        Some(jobs) => {
            let serial = CAPPED_CAMPAIGNS
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let previous = rayon::current_thread_cap();
            rayon::ThreadPoolBuilder::new()
                .num_threads(jobs)
                .build_global()
                .map_err(|e| EngineError::spec(format!("configuring {jobs} worker(s): {e}")))?;
            Ok(JobsCap {
                _restore: Some(CapRestore(previous)),
                _serial: Some(serial),
            })
        }
    }
}

/// Cache-first evaluation of one work unit against a lazily-created
/// group preparation. On a miss, the first computed unit of the group
/// carries the one-time preparation cost, so the summary's total_time
/// keeps the paper's "full wall-clock per estimator" semantics.
/// Returns the estimate and the cache tier that served it (`None` when
/// computed fresh).
///
/// Single source of truth shared by the in-process and multi-process
/// backends: the distributed byte-identity guarantee depends on both
/// paths computing and caching cells identically. The `cache_probe`,
/// `prepare_estimator`, and `estimate_cell` telemetry spans are
/// recorded here for the same reason — every backend's phase timings
/// come from the same instrumentation points (all no-ops on a disabled
/// handle).
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_unit(
    tel: &Telemetry,
    cache: &ResultCache,
    key: &str,
    seed: u64,
    model: &FailureModel,
    scenario: &ScenarioModel,
    prep: &mut Option<Box<dyn PreparedEstimator>>,
    prepare: impl FnOnce() -> Box<dyn PreparedEstimator>,
) -> Result<(Estimate, Option<CacheTier>), EngineError> {
    let found = {
        let _probe = tel.span("cache_probe");
        cache.lookup_tiered(key)
    };
    if let Some((est, tier)) = found {
        return Ok((est, Some(tier)));
    }
    let prep_cost = if prep.is_none() {
        let _prepare = tel.span("prepare_estimator");
        let t0 = Instant::now();
        *prep = Some(prepare());
        t0.elapsed()
    } else {
        // Later cells of the same (instance × estimator) group reuse
        // the group's prepared estimator — and with it every scratch
        // arena the estimator holds (completion buffers, merge arenas,
        // duration tables), so steady-state cells allocate nothing.
        // Counted so telemetry reports can show the amortization rate
        // next to the `prepare_estimator`/`estimate_cell` spans.
        tel.count("prepared_reused", 1);
        Duration::ZERO
    };
    let p = prep.as_mut().expect("prepared above");
    p.reseed(seed);
    let mut est = {
        let _estimate = tel.span("estimate_cell");
        // Spec validation already rejected unsupported (estimator,
        // scenario) pairs; this surfaces only for hand-built plans.
        p.estimate_scenario(model, scenario)
            .map_err(|e| EngineError::spec(e.to_string()))?
    };
    est.elapsed += prep_cost;
    cache.store(key, &est);
    Ok((est, None))
}

/// Build the result row of one finished cell — like [`evaluate_unit`],
/// the single definition both execution paths share.
#[allow(clippy::too_many_arguments)]
pub(crate) fn make_row(
    id: &str,
    pdag: &PreparedDag,
    label: &str,
    model: &FailureModel,
    canonical: &str,
    est: &Estimate,
    reference: &Estimate,
    seed: u64,
) -> SweepRow {
    SweepRow {
        dag: id.to_string(),
        tasks: pdag.node_count(),
        edges: pdag.edge_count(),
        model: label.to_string(),
        lambda: model.lambda,
        estimator: canonical.to_string(),
        value: est.value,
        reference: reference.value,
        reference_std_error: reference.std_error.unwrap_or(0.0),
        rel_error: (est.value - reference.value) / reference.value,
        elapsed_s: est.elapsed.as_secs_f64(),
        seed,
    }
}

/// Per-estimator cache coverage of a spec (see
/// [`Campaign::resume_report`](crate::Campaign::resume_report)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeEstimatorReport {
    /// Canonical estimator id.
    pub estimator: String,
    /// Cells already present in the cache.
    pub hits: usize,
    /// Cells that a run would have to compute.
    pub misses: usize,
}

/// Cache coverage of the cells one shard would own under a
/// multi-process backend (see [`Campaign::resume_report`](crate::Campaign::resume_report)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardCoverage {
    /// Shard index (0-based).
    pub shard: usize,
    /// Assigned cells already present in the cache.
    pub hits: usize,
    /// Assigned cells a run would have to compute.
    pub misses: usize,
}

/// Outcome of [`Campaign::resume_report`](crate::Campaign::resume_report): what a sweep would find in
/// the cache, without running anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeReport {
    /// Coverage per estimator, in spec order.
    pub estimators: Vec<ResumeEstimatorReport>,
    /// Per-shard cell coverage under the backend's worker count
    /// (one entry per shard; a single entry covering every cell for an
    /// in-process report).
    pub shards: Vec<ShardCoverage>,
    /// Monte-Carlo reference scenarios already cached.
    pub reference_hits: usize,
    /// Reference scenarios a run would have to compute.
    pub reference_misses: usize,
}

impl ResumeReport {
    /// Total cached work units (cells + references).
    pub fn total_hits(&self) -> usize {
        self.reference_hits + self.estimators.iter().map(|e| e.hits).sum::<usize>()
    }

    /// Total uncached work units (cells + references).
    pub fn total_misses(&self) -> usize {
        self.reference_misses + self.estimators.iter().map(|e| e.misses).sum::<usize>()
    }

    /// Whether a run would complete entirely from the cache.
    pub fn fully_cached(&self) -> bool {
        self.total_misses() == 0
    }
}

/// Diff a spec against the cache: for every cell and reference the
/// sweep would execute, probe whether its content key is already
/// present (memory or disk), **without computing anything** and without
/// touching the cache's counters or LRU recency. Per-cell coverage is
/// additionally split by the shard each cell would be assigned to
/// under `shard_count` workers (the same deterministic
/// [`crate::shard_of`] assignment the distributed executor uses).
/// References stay global — every shard probes the references its
/// cells need from the shared cache.
pub(crate) fn resume_report_impl(
    spec: &SweepSpec,
    registry: &EstimatorRegistry,
    cache: &ResultCache,
    shard_count: usize,
) -> Result<ResumeReport, EngineError> {
    if shard_count == 0 {
        return Err(EngineError::spec("shard count must be positive"));
    }
    let Expansion {
        estimator_ids,
        instances,
        models,
        reference_id,
    } = expand(spec, registry)?;
    let hashes: Vec<u128> = instances.iter().map(|i| structural_hash(&i.dag)).collect();
    let mut estimators: Vec<ResumeEstimatorReport> = estimator_ids
        .iter()
        .map(|(_, canonical)| ResumeEstimatorReport {
            estimator: canonical.clone(),
            hits: 0,
            misses: 0,
        })
        .collect();
    let mut shards: Vec<ShardCoverage> = (0..shard_count)
        .map(|shard| ShardCoverage {
            shard,
            hits: 0,
            misses: 0,
        })
        .collect();
    let mut reference_hits = 0;
    let mut reference_misses = 0;
    for (i, inst_models) in models.iter().enumerate() {
        for entry in inst_models {
            let lambda = entry.model.lambda;
            let ref_unit = entry.unit(&reference_id);
            let seed = derive_seed(spec.seed, hashes[i], lambda, &ref_unit);
            if cache.probe(&cell_key(hashes[i], lambda, &ref_unit, seed)) {
                reference_hits += 1;
            } else {
                reference_misses += 1;
            }
            for (e, (_, canonical)) in estimator_ids.iter().enumerate() {
                let unit = entry.unit(canonical);
                let seed = derive_seed(spec.seed, hashes[i], lambda, &unit);
                let key = cell_key(hashes[i], lambda, &unit, seed);
                let shard = crate::shard::shard_of(&key, shard_count);
                if cache.probe(&key) {
                    estimators[e].hits += 1;
                    shards[shard].hits += 1;
                } else {
                    estimators[e].misses += 1;
                    shards[shard].misses += 1;
                }
            }
        }
    }
    Ok(ResumeReport {
        estimators,
        shards,
        reference_hits,
        reference_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::sink::ResultSink;
    use crate::spec::DagSpec;
    use std::sync::{Arc, Mutex};
    use stochdag_taskgraphs::FactorizationClass;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny".into(),
            seed: 1,
            pfails: vec![0.01, 0.001],
            lambdas: vec![],
            estimators: vec![EstimatorSpec::FirstOrder, EstimatorSpec::Sculli],
            reference_trials: 1500,
            reference_sampling: stochdag_core::SamplingModel::Geometric,
            jobs: None,
            scenarios: vec![],
            dags: vec![
                DagSpec::Factorization {
                    class: FactorizationClass::Cholesky,
                    ks: vec![2, 3],
                },
                DagSpec::ForkJoin {
                    width: 3,
                    depth: 2,
                    weight: 1.0,
                },
            ],
        }
    }

    /// Minimal sink that shares its collected rows with the test — the
    /// campaign consumes its sinks, so ownership cannot come back.
    struct ShareSink(Arc<Mutex<Vec<SweepRow>>>);

    impl ResultSink for ShareSink {
        fn begin(&mut self) -> std::io::Result<()> {
            Ok(())
        }
        fn row(&mut self, row: &SweepRow) -> std::io::Result<()> {
            self.0.lock().unwrap().push(row.clone());
            Ok(())
        }
        fn summary(&mut self, _rows: &[SummaryRow]) -> std::io::Result<()> {
            Ok(())
        }
        fn finish(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sweep_runs_all_cells_in_order() {
        let rows = Arc::new(Mutex::new(Vec::new()));
        let outcome = Campaign::builder(tiny_spec())
            .sink(ShareSink(rows.clone()))
            .build()
            .unwrap()
            .run()
            .unwrap();
        // 3 DAG instances × 2 pfails × 2 estimators.
        assert_eq!(outcome.cells, 12);
        assert_eq!(outcome.references, 6);
        assert_eq!(outcome.rows.len(), 12);
        assert_eq!(
            *rows.lock().unwrap(),
            outcome.rows,
            "sink saw the same ordered rows"
        );
        // Deterministic order: scenario-major.
        assert_eq!(outcome.rows[0].dag, "cholesky:k=2");
        assert_eq!(outcome.rows[0].estimator, "first-order");
        assert_eq!(outcome.rows[1].estimator, "sculli");
        // Estimates are sane.
        for r in &outcome.rows {
            assert!(r.value > 0.0 && r.reference > 0.0);
            assert!(r.rel_error.abs() < 0.5, "{r:?}");
        }
        assert_eq!(outcome.summary.len(), 2);
    }

    #[test]
    fn repeated_run_is_fully_cached_and_identical() {
        let spec = tiny_spec();
        let cache = Arc::new(ResultCache::in_memory());
        let run = || {
            Campaign::builder(spec.clone())
                .cache(cache.clone())
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let first = run();
        assert!(!first.fully_cached());
        let second = run();
        assert!(second.fully_cached(), "second run must be 100% cache hits");
        assert_eq!(second.cache_hits, first.cells + first.references);
        assert_eq!(second.rows, first.rows, "cached rows are bit-identical");
    }

    #[test]
    fn jobs_knob_does_not_change_results() {
        let mut spec = tiny_spec();
        let run = |spec: &SweepSpec| {
            Campaign::builder(spec.clone())
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let wide = run(&spec);
        let cap_before = rayon::current_thread_cap();
        spec.jobs = Some(1);
        let narrow = run(&spec);
        assert_eq!(
            rayon::current_thread_cap(),
            cap_before,
            "the campaign must restore the global worker cap"
        );
        // Everything but the wall-clock timing must be identical.
        let values = |o: &SweepOutcome| {
            o.rows
                .iter()
                .map(|r| {
                    (
                        r.dag.clone(),
                        r.estimator.clone(),
                        r.value.to_bits(),
                        r.seed,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(values(&narrow), values(&wide), "worker cap changed rows");
        spec.jobs = Some(0);
        let err = Campaign::builder(spec).build().unwrap_err();
        assert!(err.to_string().contains("jobs"), "{err}");
    }

    #[test]
    fn seeds_differ_across_cells_but_not_runs() {
        let a = derive_seed(1, 42, 0.01, "first-order");
        assert_eq!(a, derive_seed(1, 42, 0.01, "first-order"));
        assert_ne!(a, derive_seed(1, 42, 0.01, "sculli"));
        assert_ne!(a, derive_seed(1, 43, 0.01, "first-order"));
        assert_ne!(a, derive_seed(2, 42, 0.01, "first-order"));
    }

    #[test]
    fn bad_estimator_fails_before_work() {
        let mut spec = tiny_spec();
        spec.estimators.push(EstimatorSpec::Mc { trials: 0 });
        let cache = Arc::new(ResultCache::in_memory());
        let err = Campaign::builder(spec.clone())
            .cache(cache.clone())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("mc"), "{err}");
        assert_eq!(cache.hits() + cache.misses(), 0, "no work was attempted");

        spec.estimators.pop();
        spec.estimators.push(EstimatorSpec::Sculli);
        let err = Campaign::builder(spec)
            .cache(cache.clone())
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate estimator"), "{err}");
        assert_eq!(cache.hits() + cache.misses(), 0, "no work was attempted");
    }

    #[test]
    fn resume_report_diffs_spec_against_cache() {
        let spec = tiny_spec();
        let cache = Arc::new(ResultCache::in_memory());
        let campaign = |spec: &SweepSpec| {
            Campaign::builder(spec.clone())
                .cache(cache.clone())
                .build()
                .unwrap()
        };
        let fresh = campaign(&spec).resume_report().unwrap();
        assert!(!fresh.fully_cached());
        assert_eq!(fresh.total_hits(), 0);
        assert_eq!(fresh.reference_misses, 6);
        assert_eq!(fresh.estimators.len(), 2);
        assert!(fresh
            .estimators
            .iter()
            .all(|e| e.misses == 6 && e.hits == 0));
        assert_eq!(
            cache.hits() + cache.misses(),
            0,
            "reporting must not perturb cache counters"
        );

        campaign(&spec).run().unwrap();
        let after = campaign(&spec).resume_report().unwrap();
        assert!(after.fully_cached());
        assert_eq!(after.reference_hits, 6);
        assert!(after
            .estimators
            .iter()
            .all(|e| e.hits == 6 && e.misses == 0));

        // A different seed shifts every statistical cell key; the
        // deterministic estimators' keys ignore the seed only through
        // derive_seed, so everything misses again.
        let mut reseeded = spec.clone();
        reseeded.seed = 99;
        let shifted = campaign(&reseeded).resume_report().unwrap();
        assert_eq!(shifted.total_hits(), 0, "new seed means new keys");
    }
}
