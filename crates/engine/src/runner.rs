//! The parallel sweep executor.
//!
//! Expands a [`SweepSpec`] into DAG instances, failure models, and
//! estimator cells, then runs the campaign **grouped by DAG source**:
//! every instance is wrapped in a [`PreparedDag`] exactly once per
//! campaign (one freeze, one topological sort, one structural hash —
//! asserted by the `prepared_once` integration test via
//! [`stochdag_dag::prepared_dag_build_count`]), and every
//! (instance × estimator) pair prepares once and evaluates all failure
//! models against that preparation:
//!
//! 1. **Reference phase** — one Monte-Carlo reference per (instance,
//!    model) scenario; instances are distributed over all cores and
//!    each instance's models share one prepared reference estimator,
//!    reseeded deterministically per scenario. Cache-first.
//! 2. **Cell phase** — (instance × estimator) work units in parallel,
//!    again cache-first, each iterating its models against one
//!    preparation. Completions stream through a dedicated writer
//!    thread that re-sequences them into deterministic cell order and
//!    feeds the sinks row by row while later cells are still computing.
//!
//! Determinism: cell seeds derive from the spec seed and the cell's
//! content (DAG hash, λ, estimator id) — never from position or time —
//! so a re-run, a resumed run, and a differently-parallel run all
//! produce byte-identical sink output. The `--jobs` knob
//! ([`SweepSpec::jobs`]) only caps worker threads; it cannot change any
//! value.

use crate::cache::{cell_key, ResultCache};
use crate::keys::{mix, StableHasher};
use crate::registry::EstimatorRegistry;
use crate::sink::{summarize, Reorderer, ResultSink, SummaryRow, SweepRow};
use crate::spec::{DagInstance, SweepSpec};
use rayon::prelude::*;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use stochdag_core::{Estimate, Estimator, FailureModel, MonteCarloEstimator, PreparedEstimator};
use stochdag_dag::{structural_hash, PreparedDag};

/// Outcome of a finished sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Every cell row, in deterministic cell order.
    pub rows: Vec<SweepRow>,
    /// Per-estimator aggregates.
    pub summary: Vec<SummaryRow>,
    /// Number of estimator cells (excludes references).
    pub cells: usize,
    /// Number of Monte-Carlo reference scenarios.
    pub references: usize,
    /// Cache hits across references + cells.
    pub cache_hits: usize,
    /// Cache misses (computed fresh) across references + cells.
    pub cache_misses: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
}

impl SweepOutcome {
    /// Whether every unit of work was served from the cache.
    pub fn fully_cached(&self) -> bool {
        self.cache_misses == 0
    }
}

/// Derive the deterministic seed of a work unit from the spec seed and
/// the unit's content identity. Masked to 53 bits so seeds survive the
/// JSON number model (JSONL rows, cached payloads) exactly.
pub(crate) fn derive_seed(spec_seed: u64, dag_hash: u128, lambda: f64, unit: &str) -> u64 {
    let mut h = StableHasher::new("stochdag-seed");
    h.write_u64(spec_seed)
        .write_u128(dag_hash)
        .write_f64(lambda)
        .write_str(unit);
    mix(h.finish() as u64) & ((1u64 << 53) - 1)
}

/// A validated, fully-expanded campaign — the shared front half of
/// [`run_sweep`], [`resume_report`], and the shard executor.
pub(crate) struct Expansion {
    /// `(spec string, canonical id)` per estimator, in spec order.
    pub(crate) estimator_ids: Vec<(String, String)>,
    /// Materialized DAG instances, in spec order.
    pub(crate) instances: Vec<DagInstance>,
    /// Per-instance failure models with their row labels (pfails first,
    /// then lambdas — the pfail calibration depends on the instance's
    /// mean task weight).
    pub(crate) models: Vec<Vec<(FailureModel, String)>>,
    /// Canonical id of the Monte-Carlo reference configuration.
    pub(crate) reference_id: String,
}

/// Deterministic global index of a cell: scenario-major, estimator
/// fastest. The single source of truth shared by the in-process runner
/// and the shard executor — the coordinator's re-sequencing key.
pub(crate) fn cell_index(i: usize, m: usize, e: usize, m_count: usize, e_count: usize) -> usize {
    (i * m_count + m) * e_count + e
}

pub(crate) fn expand(spec: &SweepSpec, registry: &EstimatorRegistry) -> Result<Expansion, String> {
    spec.validate()?;
    // Resolve estimator ids up front so bad specs fail before any work.
    let estimator_ids: Vec<(String, String)> = spec
        .estimators
        .iter()
        .map(|s| registry.canonical_id(s).map(|id| (s.clone(), id)))
        .collect::<Result<_, _>>()?;
    {
        let mut ids: Vec<&str> = estimator_ids.iter().map(|(_, id)| id.as_str()).collect();
        ids.sort_unstable();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(format!(
                    "duplicate estimator {:?} in spec (canonical ids must be unique)",
                    pair[0]
                ));
            }
        }
    }
    let mut instances: Vec<DagInstance> = Vec::new();
    for d in &spec.dags {
        instances.extend(d.materialize()?);
    }
    {
        let mut ids: Vec<&str> = instances.iter().map(|i| i.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != instances.len() {
            return Err("duplicate DAG instances in spec".into());
        }
    }
    // The exhaustive oracle panics past its node cap; surface that as
    // a spec error before any cell launches.
    if estimator_ids.iter().any(|(_, id)| id == "exact") {
        for inst in &instances {
            if inst.dag.node_count() > stochdag_core::MAX_EXACT_NODES {
                return Err(format!(
                    "estimator \"exact\" needs <= {} tasks, but {} has {}",
                    stochdag_core::MAX_EXACT_NODES,
                    inst.id,
                    inst.dag.node_count()
                ));
            }
        }
    }
    let models: Vec<Vec<(FailureModel, String)>> = instances
        .iter()
        .map(|inst| {
            spec.pfails
                .iter()
                .map(|&p| {
                    (
                        FailureModel::from_pfail_for_dag(p, &inst.dag),
                        format!("pfail={p}"),
                    )
                })
                .chain(
                    spec.lambdas
                        .iter()
                        .map(|&l| (FailureModel::new(l), format!("lambda={l}"))),
                )
                .collect()
        })
        .collect();
    let reference_id = format!(
        "mc-reference:{}:{}",
        spec.reference_trials,
        match spec.reference_sampling {
            stochdag_core::SamplingModel::Geometric => "geometric",
            stochdag_core::SamplingModel::TwoState => "two-state",
        }
    );
    Ok(Expansion {
        estimator_ids,
        instances,
        models,
        reference_id,
    })
}

/// RAII guard of the campaign worker-thread cap (`--jobs`).
///
/// `jobs = N` caps the worker threads for a campaign. Like real rayon's
/// global pool, the cap is process-wide while it is in effect; the
/// previous value is restored when the guard drops (on every exit
/// path), and capped campaigns are serialized against each other so
/// concurrent save/restore pairs cannot interleave and strand a stale
/// cap.
pub(crate) struct JobsCap {
    // Declaration order matters: the cap restorer is declared first so
    // the cap is restored (fields drop in declaration order) before the
    // serialization lock releases and the next capped campaign may
    // proceed.
    _restore: Option<CapRestore>,
    _serial: Option<std::sync::MutexGuard<'static, ()>>,
}

struct CapRestore(usize);

impl Drop for CapRestore {
    fn drop(&mut self) {
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(self.0)
            .build_global();
    }
}

static CAPPED_CAMPAIGNS: Mutex<()> = Mutex::new(());

/// Apply a worker-thread cap for the lifetime of the returned guard
/// (`None` = leave the pool uncapped; shared by [`run_sweep`] and the
/// shard executor).
pub(crate) fn apply_jobs_cap(jobs: Option<usize>) -> Result<JobsCap, String> {
    match jobs {
        None => Ok(JobsCap {
            _restore: None,
            _serial: None,
        }),
        Some(jobs) => {
            let serial = CAPPED_CAMPAIGNS
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let previous = rayon::current_thread_cap();
            rayon::ThreadPoolBuilder::new()
                .num_threads(jobs)
                .build_global()
                .map_err(|e| format!("configuring {jobs} worker(s): {e}"))?;
            Ok(JobsCap {
                _restore: Some(CapRestore(previous)),
                _serial: Some(serial),
            })
        }
    }
}

/// Cache-first evaluation of one work unit against a lazily-created
/// group preparation. On a miss, the first computed unit of the group
/// carries the one-time preparation cost, so the summary's total_time
/// keeps the paper's "full wall-clock per estimator" semantics.
/// Returns the estimate and whether it came from the cache.
///
/// Single source of truth shared by the in-process runner and the
/// shard executor: the distributed byte-identity guarantee depends on
/// both paths computing and caching cells identically.
pub(crate) fn evaluate_unit(
    cache: &ResultCache,
    key: &str,
    seed: u64,
    model: &FailureModel,
    prep: &mut Option<Box<dyn PreparedEstimator>>,
    prepare: impl FnOnce() -> Box<dyn PreparedEstimator>,
) -> (Estimate, bool) {
    if let Some(found) = cache.lookup(key) {
        return (found, true);
    }
    let prep_cost = if prep.is_none() {
        let t0 = Instant::now();
        *prep = Some(prepare());
        t0.elapsed()
    } else {
        Duration::ZERO
    };
    let p = prep.as_mut().expect("prepared above");
    p.reseed(seed);
    let mut est = p.estimate_for(model);
    est.elapsed += prep_cost;
    cache.store(key, &est);
    (est, false)
}

/// Build the result row of one finished cell — like [`evaluate_unit`],
/// the single definition both execution paths share.
#[allow(clippy::too_many_arguments)]
pub(crate) fn make_row(
    id: &str,
    pdag: &PreparedDag,
    label: &str,
    model: &FailureModel,
    canonical: &str,
    est: &Estimate,
    reference: &Estimate,
    seed: u64,
) -> SweepRow {
    SweepRow {
        dag: id.to_string(),
        tasks: pdag.node_count(),
        edges: pdag.edge_count(),
        model: label.to_string(),
        lambda: model.lambda,
        estimator: canonical.to_string(),
        value: est.value,
        reference: reference.value,
        reference_std_error: reference.std_error.unwrap_or(0.0),
        rel_error: (est.value - reference.value) / reference.value,
        elapsed_s: est.elapsed.as_secs_f64(),
        seed,
    }
}

/// Run a sweep, streaming rows into `sinks` (all sinks receive every
/// row, in order). Returns the collected outcome.
pub fn run_sweep(
    spec: &SweepSpec,
    registry: &EstimatorRegistry,
    cache: &ResultCache,
    sinks: &mut [&mut dyn ResultSink],
) -> Result<SweepOutcome, String> {
    let start = Instant::now();
    let Expansion {
        estimator_ids,
        instances,
        models,
        reference_id,
    } = expand(spec, registry)?;
    let _jobs_cap = apply_jobs_cap(spec.jobs)?;
    cache.reset_counters();

    // Build, freeze, and hash each DAG source exactly once; every
    // estimator preparation and cache key below shares these.
    let prepared: Vec<(String, PreparedDag)> = instances
        .into_iter()
        .map(|i| (i.id, PreparedDag::new(i.dag)))
        .collect();
    let hashes: Vec<u128> = prepared.iter().map(|(_, p)| p.structural_hash()).collect();
    let n_inst = prepared.len();
    let m_count = spec.pfails.len() + spec.lambdas.len();
    let e_count = estimator_ids.len();

    // Phase 1: Monte-Carlo references, grouped by instance so each
    // instance's models share one preparation; parallel and cache-first.
    let reference_trials = spec.reference_trials;
    let reference_sampling = spec.reference_sampling;
    let references: Vec<Vec<Estimate>> = (0..n_inst)
        .into_par_iter()
        .map(|i| {
            let (_, pdag) = &prepared[i];
            let dag_hash = hashes[i];
            let mut prep: Option<Box<dyn PreparedEstimator>> = None;
            let mut out = Vec::with_capacity(m_count);
            for (model, _) in &models[i] {
                let seed = derive_seed(spec.seed, dag_hash, model.lambda, &reference_id);
                let key = cell_key(dag_hash, model.lambda, &reference_id, seed);
                let (est, _) = evaluate_unit(cache, &key, seed, model, &mut prep, || {
                    MonteCarloEstimator::new(reference_trials)
                        .with_sampling(reference_sampling)
                        .prepare(pdag)
                });
                out.push(est);
            }
            out
        })
        .collect();

    // Phase 2: estimator cells. One parallel work unit per
    // (instance × estimator) pair: prepare lazily on the first cache
    // miss, then evaluate every model against that preparation,
    // streaming rows into the sinks in deterministic cell order.
    let n_cells = n_inst * m_count * e_count;
    for sink in sinks.iter_mut() {
        sink.begin().map_err(|e| format!("sink begin: {e}"))?;
    }
    let (tx, rx) = mpsc::channel::<(usize, SweepRow)>();
    let tx = Mutex::new(tx);
    let write_error: Mutex<Option<String>> = Mutex::new(None);
    let rows: Vec<SweepRow> = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut reorder = Reorderer::new();
            let mut rows: Vec<SweepRow> = Vec::with_capacity(n_cells);
            for (idx, row) in rx {
                let emit_result = reorder.push(idx, row, |r| {
                    // Collect first: a sink failure aborts the sweep
                    // with an error, but the row set stays complete.
                    rows.push(r.clone());
                    for sink in sinks.iter_mut() {
                        sink.row(r)?;
                    }
                    Ok(())
                });
                if let Err(e) = emit_result {
                    let mut slot = write_error.lock().expect("error slot poisoned");
                    if slot.is_none() {
                        *slot = Some(format!("sink row: {e}"));
                    }
                }
            }
            debug_assert_eq!(reorder.pending(), 0, "all cells completed");
            rows
        });

        (0..n_inst * e_count).into_par_iter().for_each(|unit| {
            let i = unit / e_count;
            let e = unit % e_count;
            let (id, pdag) = &prepared[i];
            let dag_hash = hashes[i];
            let (spec_str, canonical) = &estimator_ids[e];
            let mut prep: Option<Box<dyn PreparedEstimator>> = None;
            for (m, (model, label)) in models[i].iter().enumerate() {
                // Scenario-major cell order, identical to the
                // per-cell executor this grouping replaced.
                let cell = cell_index(i, m, e, m_count, e_count);
                let seed = derive_seed(spec.seed, dag_hash, model.lambda, canonical);
                let key = cell_key(dag_hash, model.lambda, canonical, seed);
                let (est, _) = evaluate_unit(cache, &key, seed, model, &mut prep, || {
                    registry
                        .build(spec_str, seed)
                        .expect("estimator specs validated before launch")
                        .prepare(pdag)
                });
                let row = make_row(
                    id,
                    pdag,
                    label,
                    model,
                    canonical,
                    &est,
                    &references[i][m],
                    seed,
                );
                tx.lock()
                    .expect("sender poisoned")
                    .send((cell, row))
                    .expect("writer alive until senders drop");
            }
        });
        drop(tx);
        writer.join().expect("writer thread panicked")
    });
    if let Some(e) = write_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }

    let summary = summarize(&rows);
    for sink in sinks.iter_mut() {
        sink.summary(&summary)
            .and_then(|()| sink.finish())
            .map_err(|e| format!("sink summary: {e}"))?;
    }
    Ok(SweepOutcome {
        cells: n_cells,
        references: n_inst * m_count,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        wall: start.elapsed(),
        rows,
        summary,
    })
}

/// Per-estimator cache coverage of a spec (see [`resume_report`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeEstimatorReport {
    /// Canonical estimator id.
    pub estimator: String,
    /// Cells already present in the cache.
    pub hits: usize,
    /// Cells that a run would have to compute.
    pub misses: usize,
}

/// Cache coverage of the cells one shard would own under
/// `--workers N` (see [`sharded_resume_report`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardCoverage {
    /// Shard index (0-based).
    pub shard: usize,
    /// Assigned cells already present in the cache.
    pub hits: usize,
    /// Assigned cells a run would have to compute.
    pub misses: usize,
}

/// Outcome of [`resume_report`]: what a sweep would find in the cache,
/// without running anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeReport {
    /// Coverage per estimator, in spec order.
    pub estimators: Vec<ResumeEstimatorReport>,
    /// Per-shard cell coverage under the requested worker count
    /// (one entry per shard; a single entry covering every cell when
    /// the report was not sharded).
    pub shards: Vec<ShardCoverage>,
    /// Monte-Carlo reference scenarios already cached.
    pub reference_hits: usize,
    /// Reference scenarios a run would have to compute.
    pub reference_misses: usize,
}

impl ResumeReport {
    /// Total cached work units (cells + references).
    pub fn total_hits(&self) -> usize {
        self.reference_hits + self.estimators.iter().map(|e| e.hits).sum::<usize>()
    }

    /// Total uncached work units (cells + references).
    pub fn total_misses(&self) -> usize {
        self.reference_misses + self.estimators.iter().map(|e| e.misses).sum::<usize>()
    }

    /// Whether a run would complete entirely from the cache.
    pub fn fully_cached(&self) -> bool {
        self.total_misses() == 0
    }
}

/// Diff a spec against the cache: for every cell and reference the
/// sweep would execute, probe whether its content key is already
/// present (memory or disk), **without computing anything** and without
/// touching the cache's counters or LRU recency. This is the engine
/// behind `sweep --resume-report`.
pub fn resume_report(
    spec: &SweepSpec,
    registry: &EstimatorRegistry,
    cache: &ResultCache,
) -> Result<ResumeReport, String> {
    sharded_resume_report(spec, registry, cache, 1)
}

/// [`resume_report`] under `--workers N` sharding: additionally splits
/// the per-cell coverage by the shard each cell would be assigned to
/// (the same deterministic [`crate::shard_of`] assignment the
/// distributed executor uses), so a resumed distributed campaign can
/// predict per-worker load. References stay global — every shard
/// probes the references its cells need from the shared cache.
pub fn sharded_resume_report(
    spec: &SweepSpec,
    registry: &EstimatorRegistry,
    cache: &ResultCache,
    shard_count: usize,
) -> Result<ResumeReport, String> {
    if shard_count == 0 {
        return Err("shard count must be positive".into());
    }
    let Expansion {
        estimator_ids,
        instances,
        models,
        reference_id,
    } = expand(spec, registry)?;
    let hashes: Vec<u128> = instances.iter().map(|i| structural_hash(&i.dag)).collect();
    let mut estimators: Vec<ResumeEstimatorReport> = estimator_ids
        .iter()
        .map(|(_, canonical)| ResumeEstimatorReport {
            estimator: canonical.clone(),
            hits: 0,
            misses: 0,
        })
        .collect();
    let mut shards: Vec<ShardCoverage> = (0..shard_count)
        .map(|shard| ShardCoverage {
            shard,
            hits: 0,
            misses: 0,
        })
        .collect();
    let mut reference_hits = 0;
    let mut reference_misses = 0;
    for (i, inst_models) in models.iter().enumerate() {
        for (model, _) in inst_models {
            let seed = derive_seed(spec.seed, hashes[i], model.lambda, &reference_id);
            if cache.probe(&cell_key(hashes[i], model.lambda, &reference_id, seed)) {
                reference_hits += 1;
            } else {
                reference_misses += 1;
            }
            for (e, (_, canonical)) in estimator_ids.iter().enumerate() {
                let seed = derive_seed(spec.seed, hashes[i], model.lambda, canonical);
                let key = cell_key(hashes[i], model.lambda, canonical, seed);
                let shard = crate::shard::shard_of(&key, shard_count);
                if cache.probe(&key) {
                    estimators[e].hits += 1;
                    shards[shard].hits += 1;
                } else {
                    estimators[e].misses += 1;
                    shards[shard].misses += 1;
                }
            }
        }
    }
    Ok(ResumeReport {
        estimators,
        shards,
        reference_hits,
        reference_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use crate::spec::DagSpec;
    use stochdag_taskgraphs::FactorizationClass;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny".into(),
            seed: 1,
            pfails: vec![0.01, 0.001],
            lambdas: vec![],
            estimators: vec!["first-order".into(), "sculli".into()],
            reference_trials: 1500,
            reference_sampling: stochdag_core::SamplingModel::Geometric,
            jobs: None,
            dags: vec![
                DagSpec::Factorization {
                    class: FactorizationClass::Cholesky,
                    ks: vec![2, 3],
                },
                DagSpec::ForkJoin {
                    width: 3,
                    depth: 2,
                    weight: 1.0,
                },
            ],
        }
    }

    #[test]
    fn sweep_runs_all_cells_in_order() {
        let spec = tiny_spec();
        let registry = EstimatorRegistry::standard();
        let cache = ResultCache::in_memory();
        let mut sink = VecSink::default();
        let outcome = {
            let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut sink];
            run_sweep(&spec, &registry, &cache, &mut sinks).unwrap()
        };
        // 3 DAG instances × 2 pfails × 2 estimators.
        assert_eq!(outcome.cells, 12);
        assert_eq!(outcome.references, 6);
        assert_eq!(outcome.rows.len(), 12);
        assert_eq!(sink.rows, outcome.rows, "sink saw the same ordered rows");
        // Deterministic order: scenario-major.
        assert_eq!(outcome.rows[0].dag, "cholesky:k=2");
        assert_eq!(outcome.rows[0].estimator, "first-order");
        assert_eq!(outcome.rows[1].estimator, "sculli");
        // Estimates are sane.
        for r in &outcome.rows {
            assert!(r.value > 0.0 && r.reference > 0.0);
            assert!(r.rel_error.abs() < 0.5, "{r:?}");
        }
        assert_eq!(outcome.summary.len(), 2);
    }

    #[test]
    fn repeated_run_is_fully_cached_and_identical() {
        let spec = tiny_spec();
        let registry = EstimatorRegistry::standard();
        let cache = ResultCache::in_memory();
        let run = |cache: &ResultCache| {
            let mut sink = VecSink::default();
            let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut sink];
            run_sweep(&spec, &registry, cache, &mut sinks).unwrap()
        };
        let first = run(&cache);
        assert!(!first.fully_cached());
        let second = run(&cache);
        assert!(second.fully_cached(), "second run must be 100% cache hits");
        assert_eq!(second.cache_hits, first.cells + first.references);
        assert_eq!(second.rows, first.rows, "cached rows are bit-identical");
    }

    #[test]
    fn jobs_knob_does_not_change_results() {
        let mut spec = tiny_spec();
        let registry = EstimatorRegistry::standard();
        let run = |spec: &SweepSpec| {
            let cache = ResultCache::in_memory();
            let mut sinks: Vec<&mut dyn ResultSink> = vec![];
            run_sweep(spec, &registry, &cache, &mut sinks).unwrap()
        };
        let wide = run(&spec);
        let cap_before = rayon::current_thread_cap();
        spec.jobs = Some(1);
        let narrow = run(&spec);
        assert_eq!(
            rayon::current_thread_cap(),
            cap_before,
            "run_sweep must restore the global worker cap"
        );
        // Everything but the wall-clock timing must be identical.
        let values = |o: &SweepOutcome| {
            o.rows
                .iter()
                .map(|r| {
                    (
                        r.dag.clone(),
                        r.estimator.clone(),
                        r.value.to_bits(),
                        r.seed,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(values(&narrow), values(&wide), "worker cap changed rows");
        spec.jobs = Some(0);
        let mut sinks: Vec<&mut dyn ResultSink> = vec![];
        let err = run_sweep(&spec, &registry, &ResultCache::in_memory(), &mut sinks).unwrap_err();
        assert!(err.contains("jobs"), "{err}");
    }

    #[test]
    fn seeds_differ_across_cells_but_not_runs() {
        let a = derive_seed(1, 42, 0.01, "first-order");
        assert_eq!(a, derive_seed(1, 42, 0.01, "first-order"));
        assert_ne!(a, derive_seed(1, 42, 0.01, "sculli"));
        assert_ne!(a, derive_seed(1, 43, 0.01, "first-order"));
        assert_ne!(a, derive_seed(2, 42, 0.01, "first-order"));
    }

    #[test]
    fn bad_estimator_fails_before_work() {
        let mut spec = tiny_spec();
        spec.estimators.push("warp-drive".into());
        let registry = EstimatorRegistry::standard();
        let cache = ResultCache::in_memory();
        let mut sinks: Vec<&mut dyn ResultSink> = vec![];
        let err = run_sweep(&spec, &registry, &cache, &mut sinks).unwrap_err();
        assert!(err.contains("warp-drive"), "{err}");
        assert_eq!(cache.hits() + cache.misses(), 0, "no work was attempted");
    }

    #[test]
    fn resume_report_diffs_spec_against_cache() {
        let spec = tiny_spec();
        let registry = EstimatorRegistry::standard();
        let cache = ResultCache::in_memory();
        let fresh = resume_report(&spec, &registry, &cache).unwrap();
        assert!(!fresh.fully_cached());
        assert_eq!(fresh.total_hits(), 0);
        assert_eq!(fresh.reference_misses, 6);
        assert_eq!(fresh.estimators.len(), 2);
        assert!(fresh
            .estimators
            .iter()
            .all(|e| e.misses == 6 && e.hits == 0));
        assert_eq!(
            cache.hits() + cache.misses(),
            0,
            "reporting must not perturb cache counters"
        );

        let mut sinks: Vec<&mut dyn ResultSink> = vec![];
        run_sweep(&spec, &registry, &cache, &mut sinks).unwrap();
        let after = resume_report(&spec, &registry, &cache).unwrap();
        assert!(after.fully_cached());
        assert_eq!(after.reference_hits, 6);
        assert!(after
            .estimators
            .iter()
            .all(|e| e.hits == 6 && e.misses == 0));

        // A different seed shifts every statistical cell key; the
        // deterministic estimators' keys ignore the seed only through
        // derive_seed, so everything misses again.
        let mut reseeded = spec.clone();
        reseeded.seed = 99;
        let shifted = resume_report(&reseeded, &registry, &cache).unwrap();
        assert_eq!(shifted.total_hits(), 0, "new seed means new keys");
    }
}
