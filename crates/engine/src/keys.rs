//! Stable hashing for content-addressed cache keys.
//!
//! Fixed mixing constants, explicit canonicalization of floats, no
//! process-random state: a key computed today on one machine equals the
//! key computed tomorrow on another, which is what lets resumed and
//! repeated campaigns skip finished cells.

// The one SplitMix64 definition lives next to the structural hash so
// cache keys and DAG digests can never drift apart.
pub(crate) use stochdag_dag::stable_mix64 as mix;

/// Incremental stable hasher (128-bit output from two mixing lanes).
pub struct StableHasher {
    lo: u64,
    hi: u64,
}

impl StableHasher {
    /// Hasher seeded with a domain tag.
    pub fn new(domain: &str) -> StableHasher {
        let mut h = StableHasher {
            lo: 0x9AE1_6A3B_2F90_404F,
            hi: 0xCBF2_9CE4_8422_2325,
        };
        h.write_str(domain);
        h
    }

    /// Fold in a raw word.
    pub fn write_u64(&mut self, w: u64) -> &mut Self {
        self.lo = mix(self.lo ^ w);
        self.hi = mix(self.hi ^ w.rotate_left(31));
        self
    }

    /// Fold in a 128-bit word.
    pub fn write_u128(&mut self, w: u128) -> &mut Self {
        self.write_u64(w as u64).write_u64((w >> 64) as u64)
    }

    /// Fold in a float by canonical bit pattern (`-0.0` → `0.0`).
    pub fn write_f64(&mut self, f: f64) -> &mut Self {
        self.write_u64(stochdag_dag::canonical_f64_bits(f))
    }

    /// Fold in a string (length-prefixed, byte-exact).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
        self
    }

    /// Final 128-bit digest.
    pub fn finish(&self) -> u128 {
        let lo = mix(self.lo ^ self.hi);
        let hi = mix(self.hi ^ self.lo.rotate_left(17));
        ((hi as u128) << 64) | lo as u128
    }

    /// Final digest rendered as 32 lowercase hex chars.
    pub fn finish_hex(&self) -> String {
        format!("{:032x}", self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_input_sensitive() {
        let key = |s: &str, x: f64| {
            let mut h = StableHasher::new("test");
            h.write_str(s).write_f64(x);
            h.finish_hex()
        };
        assert_eq!(key("a", 1.0), key("a", 1.0));
        assert_ne!(key("a", 1.0), key("a", 1.0000001));
        assert_ne!(key("a", 1.0), key("b", 1.0));
        assert_eq!(key("a", 0.0), key("a", -0.0), "canonical zero");
        assert_eq!(key("x", 2.0).len(), 32);
    }

    #[test]
    fn string_boundaries_matter() {
        let h1 = {
            let mut h = StableHasher::new("t");
            h.write_str("ab").write_str("c");
            h.finish()
        };
        let h2 = {
            let mut h = StableHasher::new("t");
            h.write_str("a").write_str("bc");
            h.finish()
        };
        assert_ne!(h1, h2, "length prefix separates concatenations");
    }
}
