//! Content-addressed result cache.
//!
//! A cell's key digests everything its result depends on: the DAG's
//! [structural hash](stochdag_dag::structural_hash) (structure +
//! weights), the failure model's λ, the canonical estimator id, and the
//! cell's deterministic seed. Identical inputs ⇒ identical key, on any
//! machine, in any session — so repeated or resumed campaigns skip
//! every finished cell.
//!
//! Two tiers: an in-memory map (always on) and an optional on-disk
//! layer (`<dir>/<k[0..2]>/<key>.json`, written atomically via a
//! temp-file rename) that persists across processes.

use crate::keys::StableHasher;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use stochdag_core::Estimate;

/// Bump when cached payload semantics change (invalidates old entries).
const CACHE_VERSION: u64 = 1;

/// Compute the content key of one estimation cell.
pub fn cell_key(dag_hash: u128, lambda: f64, estimator_id: &str, seed: u64) -> String {
    let mut h = StableHasher::new("stochdag-cell");
    h.write_u64(CACHE_VERSION)
        .write_u128(dag_hash)
        .write_f64(lambda)
        .write_str(estimator_id)
        .write_u64(seed);
    h.finish_hex()
}

/// Two-tier content-addressed cache of [`Estimate`]s.
pub struct ResultCache {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<String, Estimate>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ResultCache {
    /// Purely in-memory cache (one process lifetime).
    pub fn in_memory() -> ResultCache {
        ResultCache {
            dir: None,
            mem: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Cache backed by a directory (created on first write).
    pub fn on_disk(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache {
            dir: Some(dir.into()),
            ..ResultCache::in_memory()
        }
    }

    fn path_of(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| {
            let shard = &key[..2];
            d.join(shard).join(format!("{key}.json"))
        })
    }

    /// Look a key up (memory first, then disk). Counts a hit or miss.
    pub fn lookup(&self, key: &str) -> Option<Estimate> {
        if let Some(found) = self.mem.lock().expect("cache poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(found.clone());
        }
        if let Some(path) = self.path_of(key) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                match serde::json::from_str::<Estimate>(&text) {
                    Ok(est) => {
                        self.mem
                            .lock()
                            .expect("cache poisoned")
                            .insert(key.to_string(), est.clone());
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(est);
                    }
                    Err(e) => {
                        // A corrupt entry is a miss, not an error — the
                        // cell simply recomputes and overwrites it.
                        eprintln!("warning: discarding corrupt cache entry {path:?}: {e}");
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Store a result under a key (memory + disk when configured).
    pub fn store(&self, key: &str, est: &Estimate) {
        self.mem
            .lock()
            .expect("cache poisoned")
            .insert(key.to_string(), est.clone());
        if let Some(path) = self.path_of(key) {
            let parent = path.parent().expect("sharded path has a parent");
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("warning: cannot create cache dir {parent:?}: {e}");
                return;
            }
            let tmp = path.with_extension("json.tmp");
            let payload = serde::json::to_string(est);
            if let Err(e) =
                std::fs::write(&tmp, &payload).and_then(|()| std::fs::rename(&tmp, &path))
            {
                eprintln!("warning: cannot persist cache entry {path:?}: {e}");
            }
        }
    }

    /// Hits counted since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses counted since construction.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Reset the hit/miss counters (e.g. between sweep phases).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample(value: f64) -> Estimate {
        Estimate {
            value,
            elapsed: Duration::from_millis(12),
            name: "FirstOrder".into(),
            std_error: Some(0.25),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("stochdag_cache_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn keys_are_stable_and_discriminating() {
        let k = cell_key(42, 0.01, "first-order", 7);
        assert_eq!(k, cell_key(42, 0.01, "first-order", 7));
        assert_eq!(k.len(), 32);
        assert_ne!(k, cell_key(43, 0.01, "first-order", 7));
        assert_ne!(k, cell_key(42, 0.011, "first-order", 7));
        assert_ne!(k, cell_key(42, 0.01, "first-order-naive", 7));
        assert_ne!(k, cell_key(42, 0.01, "first-order", 8));
    }

    #[test]
    fn memory_round_trip_counts_hits() {
        let c = ResultCache::in_memory();
        let key = cell_key(1, 0.1, "sculli", 0);
        assert!(c.lookup(&key).is_none());
        c.store(&key, &sample(5.0));
        let got = c.lookup(&key).expect("hit");
        assert_eq!(got.value, 5.0);
        assert_eq!(got.name, "FirstOrder");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn disk_round_trip_survives_new_instance() {
        let dir = tmp_dir("disk");
        let key = cell_key(2, 0.2, "corlca", 3);
        {
            let c = ResultCache::on_disk(&dir);
            c.store(&key, &sample(7.5));
        }
        let c2 = ResultCache::on_disk(&dir);
        let got = c2.lookup(&key).expect("disk hit");
        assert_eq!(got.value, 7.5);
        assert_eq!(got.std_error, Some(0.25));
        assert_eq!(got.elapsed, Duration::from_millis(12));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let dir = tmp_dir("corrupt");
        let key = cell_key(3, 0.3, "dodin:128", 1);
        let c = ResultCache::on_disk(&dir);
        c.store(&key, &sample(1.0));
        // Corrupt the file and wipe memory by using a fresh instance.
        let path = dir.join(&key[..2]).join(format!("{key}.json"));
        std::fs::write(&path, "{not json").unwrap();
        let c2 = ResultCache::on_disk(&dir);
        assert!(c2.lookup(&key).is_none());
        assert_eq!(c2.misses(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
