//! Content-addressed result cache.
//!
//! A cell's key digests everything its result depends on: the DAG's
//! [structural hash](stochdag_dag::structural_hash) (structure +
//! weights), the failure model's λ, the canonical estimator id, and the
//! cell's deterministic seed. Identical inputs ⇒ identical key, on any
//! machine, in any session — so repeated or resumed campaigns skip
//! every finished cell.
//!
//! Two tiers: an in-memory map (always on) and an optional on-disk
//! layer (`<dir>/<k[0..2]>/<key>.json`, written atomically via a
//! per-process-unique temp-file rename) that persists across processes
//! — and is safe to **share between concurrent worker processes**:
//! racing writers of the same key each rename a complete payload into
//! place, so readers never observe a torn entry (see `sweep --workers`).
//!
//! The on-disk tier supports LRU garbage collection
//! ([`ResultCache::gc_disk`]): every disk hit refreshes the entry's
//! modification time, so after a campaign the cache can be pruned to a
//! byte budget by evicting the least-recently-used entries first.

use crate::keys::StableHasher;
use std::collections::HashMap;
use std::fs::FileTimes;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;
use stochdag_core::Estimate;

/// Bump when cached payload semantics change (invalidates old entries).
const CACHE_VERSION: u64 = 1;

/// Temp files younger than this survive [`ResultCache::gc_disk`]: they
/// may be a concurrent writer's in-flight payload (see `store`), not an
/// interrupted write's leftover.
const TMP_GRACE: std::time::Duration = std::time::Duration::from_secs(60);

/// Compute the content key of one estimation cell.
pub fn cell_key(dag_hash: u128, lambda: f64, estimator_id: &str, seed: u64) -> String {
    let mut h = StableHasher::new("stochdag-cell");
    h.write_u64(CACHE_VERSION)
        .write_u128(dag_hash)
        .write_f64(lambda)
        .write_str(estimator_id)
        .write_u64(seed);
    h.finish_hex()
}

/// Which cache tier served a lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheTier {
    /// The per-process in-memory map.
    Memory,
    /// The shared on-disk store.
    Disk,
}

impl CacheTier {
    /// Stable wire/report name (`"memory"` / `"disk"`).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheTier::Memory => "memory",
            CacheTier::Disk => "disk",
        }
    }

    /// Parse a wire name produced by [`CacheTier::as_str`].
    pub(crate) fn parse(s: &str) -> Option<CacheTier> {
        match s {
            "memory" => Some(CacheTier::Memory),
            "disk" => Some(CacheTier::Disk),
            _ => None,
        }
    }
}

/// Outcome of one [`ResultCache::gc_disk`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheGcStats {
    /// Entries surviving the pass.
    pub kept_files: usize,
    /// Total payload bytes surviving the pass.
    pub kept_bytes: u64,
    /// Entries (and stray temp files) deleted.
    pub evicted_files: usize,
    /// Bytes reclaimed.
    pub evicted_bytes: u64,
}

/// Two-tier content-addressed cache of [`Estimate`]s.
pub struct ResultCache {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<String, Estimate>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    mem_hits: AtomicUsize,
    disk_hits: AtomicUsize,
}

impl ResultCache {
    /// Purely in-memory cache (one process lifetime).
    pub fn in_memory() -> ResultCache {
        ResultCache {
            dir: None,
            mem: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            mem_hits: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
        }
    }

    /// Cache backed by a directory (created on first write).
    pub fn on_disk(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache {
            dir: Some(dir.into()),
            ..ResultCache::in_memory()
        }
    }

    /// The on-disk tier's directory, when one is configured. This is
    /// what multi-process backends hand to worker processes so every
    /// shard shares one content-addressed store.
    pub fn disk_dir(&self) -> Option<&std::path::Path> {
        self.dir.as_deref()
    }

    fn path_of(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| {
            let shard = &key[..2];
            d.join(shard).join(format!("{key}.json"))
        })
    }

    /// Look a key up (memory first, then disk). Counts a hit or miss.
    pub fn lookup(&self, key: &str) -> Option<Estimate> {
        self.lookup_tiered(key).map(|(est, _)| est)
    }

    /// Like [`lookup`](ResultCache::lookup), but also reports **which
    /// tier** served the hit — the primitive behind per-tier telemetry
    /// counters and the `tier` field of cell wire events.
    pub fn lookup_tiered(&self, key: &str) -> Option<(Estimate, CacheTier)> {
        if let Some(found) = self.mem.lock().expect("cache poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Some((found.clone(), CacheTier::Memory));
        }
        if let Some(path) = self.path_of(key) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                match serde::json::from_str::<Estimate>(&text) {
                    Ok(est) => {
                        // Refresh the entry's mtime so LRU eviction
                        // (`gc_disk`) sees it as recently used.
                        let _ = std::fs::File::options()
                            .append(true)
                            .open(&path)
                            .and_then(|f| {
                                f.set_times(FileTimes::new().set_modified(SystemTime::now()))
                            });
                        self.mem
                            .lock()
                            .expect("cache poisoned")
                            .insert(key.to_string(), est.clone());
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Some((est, CacheTier::Disk));
                    }
                    Err(e) => {
                        // A corrupt entry is a miss, not an error — the
                        // cell simply recomputes and overwrites it.
                        eprintln!("warning: discarding corrupt cache entry {path:?}: {e}");
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Store a result under a key (memory + disk when configured).
    ///
    /// Concurrent-writer safe: the payload is written to a temp name
    /// unique per (process, store call) and atomically renamed into
    /// place, so two worker processes sharing the directory can race on
    /// the same key without a reader ever observing a torn file — the
    /// rename is last-writer-wins over complete payloads only.
    pub fn store(&self, key: &str, est: &Estimate) {
        static STORE_SEQ: AtomicUsize = AtomicUsize::new(0);
        self.mem
            .lock()
            .expect("cache poisoned")
            .insert(key.to_string(), est.clone());
        if let Some(path) = self.path_of(key) {
            let parent = path.parent().expect("sharded path has a parent");
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("warning: cannot create cache dir {parent:?}: {e}");
                return;
            }
            let tmp = path.with_extension(format!(
                "json.tmp.{}.{}",
                std::process::id(),
                STORE_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let payload = serde::json::to_string(est);
            if let Err(e) =
                std::fs::write(&tmp, &payload).and_then(|()| std::fs::rename(&tmp, &path))
            {
                eprintln!("warning: cannot persist cache entry {path:?}: {e}");
            }
        }
    }

    /// Whether `key` is present (memory or disk) **without** touching
    /// the hit/miss counters, loading the payload, or refreshing LRU
    /// recency. This is the primitive behind `sweep --resume-report`:
    /// diff a spec against the cache without perturbing it.
    pub fn probe(&self, key: &str) -> bool {
        if self.mem.lock().expect("cache poisoned").contains_key(key) {
            return true;
        }
        match self.path_of(key) {
            Some(path) => path.is_file(),
            None => false,
        }
    }

    /// Prune the on-disk tier to at most `max_bytes` of payload by
    /// deleting least-recently-used entries first (oldest modification
    /// time; ties broken by path for determinism). Stray `.json.tmp`
    /// files from interrupted writes are always removed. A cache
    /// without a disk tier returns empty stats.
    ///
    /// The in-memory tier is unaffected: it is per-process and cheap,
    /// while the byte budget governs what persists across campaigns.
    pub fn gc_disk(&self, max_bytes: u64) -> Result<CacheGcStats, crate::EngineError> {
        self.gc_disk_inner(max_bytes).map_err(|e| {
            crate::EngineError::cache(format!(
                "gc of {}: {e}",
                self.dir
                    .as_deref()
                    .unwrap_or(std::path::Path::new("?"))
                    .display()
            ))
        })
    }

    fn gc_disk_inner(&self, max_bytes: u64) -> std::io::Result<CacheGcStats> {
        // Another process may gc or rewrite the shared directory while
        // this pass iterates; a file vanishing between listing and
        // stat/unlink means its reclamation goal is already met, so
        // `NotFound` is success, never an error.
        fn remove_if_present(path: &std::path::Path) -> std::io::Result<bool> {
            match std::fs::remove_file(path) {
                Ok(()) => Ok(true),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
                Err(e) => Err(e),
            }
        }
        let mut stats = CacheGcStats::default();
        let Some(dir) = &self.dir else {
            return Ok(stats);
        };
        if !dir.is_dir() {
            return Ok(stats);
        }
        let mut entries: Vec<(SystemTime, PathBuf, u64)> = Vec::new();
        for shard in std::fs::read_dir(dir)? {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            for file in std::fs::read_dir(&shard)? {
                let path = file?.path();
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name.contains(".json.tmp") {
                    // Temp file of an atomic write (`<key>.json.tmp.
                    // <pid>.<seq>`) — either an interrupted write's
                    // leftover (reclaim) or a concurrent writer's
                    // in-flight payload about to be renamed (leave it:
                    // deleting it would lose that writer's entry). The
                    // two are distinguished by age; a live write-then-
                    // rename completes in well under the grace period.
                    // A future mtime (clock stepped backward) makes
                    // elapsed() fail — treat that as fresh: deleting a
                    // live writer's tmp loses its entry, keeping a
                    // stale one only wastes bytes until the next GC.
                    let meta = path.metadata().ok();
                    let fresh = meta
                        .as_ref()
                        .and_then(|m| m.modified().ok())
                        .is_some_and(|t| t.elapsed().map_or(true, |age| age < TMP_GRACE));
                    if fresh {
                        continue;
                    }
                    let len = meta.map(|m| m.len()).unwrap_or(0);
                    if remove_if_present(&path)? {
                        stats.evicted_files += 1;
                        stats.evicted_bytes += len;
                    }
                    continue;
                }
                if !name.ends_with(".json") {
                    continue;
                }
                let meta = match path.metadata() {
                    Ok(m) => m,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                    Err(e) => return Err(e),
                };
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                entries.push((mtime, path, meta.len()));
            }
        }
        let mut total: u64 = entries.iter().map(|&(_, _, len)| len).sum();
        stats.kept_files = entries.len();
        // Oldest first; path tiebreak keeps eviction order deterministic
        // when mtimes collide (coarse filesystem timestamps).
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (_, path, len) in entries {
            if total <= max_bytes {
                break;
            }
            if remove_if_present(&path)? {
                stats.evicted_files += 1;
                stats.evicted_bytes += len;
            }
            total -= len;
            stats.kept_files -= 1;
        }
        stats.kept_bytes = total;
        Ok(stats)
    }

    /// Hits counted since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses counted since construction.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits served by the in-memory tier since construction.
    pub fn memory_hits(&self) -> usize {
        self.mem_hits.load(Ordering::Relaxed)
    }

    /// Hits served by the on-disk tier since construction.
    pub fn disk_hits(&self) -> usize {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Reset the hit/miss counters (e.g. between sweep phases).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.mem_hits.store(0, Ordering::Relaxed);
        self.disk_hits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample(value: f64) -> Estimate {
        Estimate {
            value,
            elapsed: Duration::from_millis(12),
            name: "FirstOrder".into(),
            std_error: Some(0.25),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("stochdag_cache_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn keys_are_stable_and_discriminating() {
        let k = cell_key(42, 0.01, "first-order", 7);
        assert_eq!(k, cell_key(42, 0.01, "first-order", 7));
        assert_eq!(k.len(), 32);
        assert_ne!(k, cell_key(43, 0.01, "first-order", 7));
        assert_ne!(k, cell_key(42, 0.011, "first-order", 7));
        assert_ne!(k, cell_key(42, 0.01, "first-order-naive", 7));
        assert_ne!(k, cell_key(42, 0.01, "first-order", 8));
    }

    #[test]
    fn memory_round_trip_counts_hits() {
        let c = ResultCache::in_memory();
        let key = cell_key(1, 0.1, "sculli", 0);
        assert!(c.lookup(&key).is_none());
        c.store(&key, &sample(5.0));
        let got = c.lookup(&key).expect("hit");
        assert_eq!(got.value, 5.0);
        assert_eq!(got.name, "FirstOrder");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn disk_round_trip_survives_new_instance() {
        let dir = tmp_dir("disk");
        let key = cell_key(2, 0.2, "corlca", 3);
        {
            let c = ResultCache::on_disk(&dir);
            c.store(&key, &sample(7.5));
        }
        let c2 = ResultCache::on_disk(&dir);
        let got = c2.lookup(&key).expect("disk hit");
        assert_eq!(got.value, 7.5);
        assert_eq!(got.std_error, Some(0.25));
        assert_eq!(got.elapsed, Duration::from_millis(12));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookup_tiered_reports_the_serving_tier() {
        let dir = tmp_dir("tiered");
        let key = cell_key(4, 0.4, "first-order", 9);
        let c = ResultCache::on_disk(&dir);
        assert!(c.lookup_tiered(&key).is_none());
        c.store(&key, &sample(6.0));
        let (_, tier) = c.lookup_tiered(&key).unwrap();
        assert_eq!(tier, CacheTier::Memory);
        // A fresh instance has a cold memory tier: first hit is disk,
        // the promotion makes the second hit memory.
        let fresh = ResultCache::on_disk(&dir);
        let (_, tier) = fresh.lookup_tiered(&key).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        let (_, tier) = fresh.lookup_tiered(&key).unwrap();
        assert_eq!(tier, CacheTier::Memory);
        assert_eq!(fresh.hits(), 2);
        assert_eq!(fresh.memory_hits(), 1);
        assert_eq!(fresh.disk_hits(), 1);
        fresh.reset_counters();
        assert_eq!(fresh.memory_hits() + fresh.disk_hits() + fresh.hits(), 0);
        assert_eq!(CacheTier::parse("disk"), Some(CacheTier::Disk));
        assert_eq!(
            CacheTier::parse(CacheTier::Memory.as_str()),
            Some(CacheTier::Memory)
        );
        assert_eq!(CacheTier::parse("l2"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_sees_memory_and_disk_without_counting() {
        let dir = tmp_dir("probe");
        let key = cell_key(9, 0.5, "sculli", 2);
        let c = ResultCache::on_disk(&dir);
        assert!(!c.probe(&key));
        c.store(&key, &sample(2.0));
        assert!(c.probe(&key), "memory tier visible");
        let fresh = ResultCache::on_disk(&dir);
        assert!(fresh.probe(&key), "disk tier visible");
        assert_eq!(fresh.hits() + fresh.misses(), 0, "probe never counts");
        let none = ResultCache::in_memory();
        assert!(!none.probe(&key));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn backdate(dir: &std::path::Path, key: &str, secs_ago: u64) {
        let path = dir.join(&key[..2]).join(format!("{key}.json"));
        let when = std::time::SystemTime::now() - Duration::from_secs(secs_ago);
        std::fs::File::options()
            .append(true)
            .open(&path)
            .unwrap()
            .set_times(super::FileTimes::new().set_modified(when))
            .unwrap();
    }

    fn on_disk_file(dir: &std::path::Path, key: &str) -> bool {
        dir.join(&key[..2]).join(format!("{key}.json")).is_file()
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let dir = tmp_dir("gc_lru");
        let c = ResultCache::on_disk(&dir);
        let keys: Vec<String> = (0..3).map(|i| cell_key(i, 0.1, "first-order", 0)).collect();
        for (i, k) in keys.iter().enumerate() {
            c.store(k, &sample(i as f64));
        }
        // Recency order (oldest -> newest): keys[1], keys[0], keys[2].
        backdate(&dir, &keys[1], 300);
        backdate(&dir, &keys[0], 200);
        backdate(&dir, &keys[2], 100);
        let entry_len = dir
            .join(&keys[0][..2])
            .join(format!("{}.json", keys[0]))
            .metadata()
            .unwrap()
            .len();
        // Budget for exactly two entries: the oldest (keys[1]) must go.
        let stats = c.gc_disk(2 * entry_len + entry_len / 2).unwrap();
        assert_eq!(stats.evicted_files, 1);
        assert_eq!(stats.kept_files, 2);
        assert!(stats.kept_bytes <= 2 * entry_len + entry_len / 2);
        assert!(!on_disk_file(&dir, &keys[1]), "LRU entry evicted");
        assert!(on_disk_file(&dir, &keys[0]));
        assert!(on_disk_file(&dir, &keys[2]));
        // Budget 0 clears the rest.
        let stats = c.gc_disk(0).unwrap();
        assert_eq!(stats.evicted_files, 2);
        assert_eq!(stats.kept_files, 0);
        assert_eq!(stats.kept_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_hits_refresh_recency() {
        let dir = tmp_dir("gc_touch");
        let k_old = cell_key(1, 0.1, "sculli", 0);
        let k_new = cell_key(2, 0.1, "sculli", 0);
        {
            let c = ResultCache::on_disk(&dir);
            c.store(&k_old, &sample(1.0));
            c.store(&k_new, &sample(2.0));
        }
        backdate(&dir, &k_old, 500);
        backdate(&dir, &k_new, 100);
        // A fresh instance reads k_old from disk, touching its mtime.
        let c = ResultCache::on_disk(&dir);
        assert!(c.lookup(&k_old).is_some());
        let entry_len = dir
            .join(&k_old[..2])
            .join(format!("{k_old}.json"))
            .metadata()
            .unwrap()
            .len();
        let stats = c.gc_disk(entry_len + entry_len / 2).unwrap();
        assert_eq!(stats.evicted_files, 1);
        assert!(
            on_disk_file(&dir, &k_old),
            "recently-read entry must survive"
        );
        assert!(!on_disk_file(&dir, &k_new), "stale entry evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_stray_tmp_files_and_tolerates_no_disk() {
        let dir = tmp_dir("gc_tmp");
        let c = ResultCache::on_disk(&dir);
        let key = cell_key(5, 0.2, "corlca", 1);
        c.store(&key, &sample(3.0));
        let tmp = dir.join(&key[..2]).join(format!("{key}.json.tmp.999.0"));
        std::fs::write(&tmp, "partial").unwrap();
        // A fresh tmp could be a concurrent writer's in-flight payload:
        // GC must leave it alone.
        let stats = c.gc_disk(u64::MAX).unwrap();
        assert_eq!(stats.evicted_files, 0, "in-flight tmp survives");
        assert!(tmp.exists());
        // A future mtime (clock stepped backward since the write) must
        // also read as in-flight, not stale.
        let future = std::time::SystemTime::now() + Duration::from_secs(300);
        std::fs::File::options()
            .append(true)
            .open(&tmp)
            .unwrap()
            .set_times(FileTimes::new().set_modified(future))
            .unwrap();
        let stats = c.gc_disk(u64::MAX).unwrap();
        assert_eq!(stats.evicted_files, 0, "future-dated tmp survives");
        assert!(tmp.exists());
        // Once older than the grace period it is an interrupted write's
        // leftover and gets reclaimed.
        let stale = std::time::SystemTime::now() - Duration::from_secs(300);
        std::fs::File::options()
            .append(true)
            .open(&tmp)
            .unwrap()
            .set_times(FileTimes::new().set_modified(stale))
            .unwrap();
        let stats = c.gc_disk(u64::MAX).unwrap();
        assert_eq!(stats.evicted_files, 1, "only the stale tmp is removed");
        assert!(!tmp.exists());
        assert!(on_disk_file(&dir, &key));
        assert_eq!(
            ResultCache::in_memory().gc_disk(0).unwrap(),
            CacheGcStats::default()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_reads() {
        // Two ResultCache instances over one directory model two worker
        // processes sharing a disk tier (each process has its own
        // memory tier). Writers hammer an overlapping key set while a
        // reader polls with fresh instances (cold memory tier, so every
        // hit is a disk read) and a GC pass prunes mid-campaign. A read
        // must only ever observe a complete payload or nothing.
        let dir = tmp_dir("concurrent");
        let keys: Vec<String> = (0..24u64)
            .map(|i| cell_key(i as u128, 0.1, "first-order", i))
            .collect();
        let expected = |i: usize| 100.0 + i as f64;
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let dir = dir.clone();
                let keys = keys.clone();
                scope.spawn(move || {
                    let c = ResultCache::on_disk(&dir);
                    for round in 0..6 {
                        for (i, k) in keys.iter().enumerate() {
                            c.store(k, &sample(expected(i)));
                            if round % 2 == 0 {
                                c.lookup(k);
                            }
                        }
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..40 {
                    let fresh = ResultCache::on_disk(&dir);
                    for (i, k) in keys.iter().enumerate() {
                        if let Some(est) = fresh.lookup(k) {
                            assert_eq!(est.value, expected(i), "torn or mixed payload for {k}");
                        }
                    }
                }
            });
            scope.spawn(|| {
                // Mid-campaign GC with a byte budget must tolerate
                // concurrent writers (files appearing/vanishing) and
                // must never surface an error.
                let c = ResultCache::on_disk(&dir);
                for _ in 0..10 {
                    c.gc_disk(4096).expect("gc during writes");
                    std::thread::yield_now();
                }
            });
        });
        // After the dust settles, every key must be durable and intact.
        let settled = ResultCache::on_disk(&dir);
        for (i, k) in keys.iter().enumerate() {
            settled.store(k, &sample(expected(i)));
        }
        let fresh = ResultCache::on_disk(&dir);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(fresh.lookup(k).expect("durable entry").value, expected(i));
        }
        // No stray temp files survive a final GC pass.
        let stats = fresh.gc_disk(u64::MAX).unwrap();
        assert_eq!(stats.kept_files, keys.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let dir = tmp_dir("corrupt");
        let key = cell_key(3, 0.3, "dodin:128", 1);
        let c = ResultCache::on_disk(&dir);
        c.store(&key, &sample(1.0));
        // Corrupt the file and wipe memory by using a fresh instance.
        let path = dir.join(&key[..2]).join(format!("{key}.json"));
        std::fs::write(&path, "{not json").unwrap();
        let c2 = ResultCache::on_disk(&dir);
        assert!(c2.lookup(&key).is_none());
        assert_eq!(c2.misses(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
