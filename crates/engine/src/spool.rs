//! Cross-host campaigns over a shared-filesystem spool directory: the
//! [`SharedFs`] backend (coordinator side) and the [`SpoolWorker`]
//! session (remote side, behind `sweep-worker --spool`).
//!
//! The transport is the filesystem every host already shares (NFS,
//! Lustre, a bind mount): no sockets, no ssh, no new dependencies.
//! All handoff is by **atomic rename** — the same tmp-then-rename
//! discipline [`ResultCache`] uses for cell payloads — so a reader
//! never observes a half-written file:
//!
//! ```text
//! spool/
//!   spec.json                    campaign spec (coordinator, at start)
//!   meta.json                    campaign name + shared cache dir
//!   workers/{name}.json          worker registration {name, jobs, pid}
//!   stats/{name}.json            cumulative worker progress {name, leases, cells}
//!   leases/open/
//!     lease-000007-a1.json       grantable lease, attempt 1
//!   leases/claimed/
//!     lease-000007-a1.json       renamed here by the claiming worker
//!   events/
//!     lease-000007-a1.jsonl      the attempt's CampaignEvent stream
//!   stop                         "done" or "abort"; workers exit
//! ```
//!
//! Lifecycle: the coordinator writes `spec.json`/`meta.json`, drops
//! every planned [`WorkLease`] into `leases/open/`, and polls. Workers
//! (launched by hand, a job scheduler, anything) register themselves,
//! claim leases by renaming `open/ → claimed/` (the rename race picks
//! exactly one winner), execute them against the shared cache with the
//! standard [`LeaseExecutor`], and publish each attempt's event stream
//! to `events/` — ending in
//! [`LeaseDone`](crate::CampaignEvent::LeaseDone) on success or an
//! [`Error`](crate::CampaignEvent::Error) tail on failure. The
//! coordinator merges complete streams and **re-queues** failed or
//! stale attempts (a claim older than the lease timeout with no event
//! file is a dead worker) under the campaign's per-lease attempt cap,
//! exactly like a local [`MultiProcess`](crate::MultiProcess) crash.
//! Output stays byte-identical to a single-process run because every
//! consumer shares the [`LeaseExecutor`] definitions and the campaign
//! merge re-sequences rows by global cell index.
//!
//! Spool workers run with telemetry disabled (snapshots would need
//! another spool channel for little insight — worker timings are in
//! the event streams' wake); the coordinator's own spans and counters
//! (`worker_retries`, per-event progress) work as usual. Workers do
//! publish cumulative progress to `stats/{name}.json` after every
//! completed lease; the coordinator folds the deltas into
//! `spool_leases_{name}` / `spool_cells_{name}` telemetry counters and
//! counts stale-claim reclaims as `spool_reclaims`, so `--metrics-out`
//! shows who did the work and how often leases had to be re-granted.

use crate::campaign::{BackendContext, Deliver, ExecBackend, COORDINATOR_SOURCE};
use crate::error::EngineError;
use crate::lease::{
    decode_lease, encode_lease, CampaignPlan, LeaseExecutor, LeaseQueue, WorkLease,
};
use crate::protocol::{decode_event, encode_event, CampaignEvent};
use crate::registry::EstimatorRegistry;
use crate::runner::apply_jobs_cap;
use crate::spec::SweepSpec;
use crate::telemetry::Telemetry;
use serde::Value;
use std::collections::{BTreeMap, HashSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const POLL: Duration = Duration::from_millis(50);

/// Write `payload` to `path` atomically (tmp in the same directory,
/// then rename) so spool readers never observe a torn file.
fn write_atomic(path: &Path, payload: &str) -> Result<(), EngineError> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, payload)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| EngineError::io(format!("writing spool file {}", path.display()), e))
}

fn lease_file_name(lease_id: usize, attempt: usize) -> String {
    format!("lease-{lease_id:06}-a{attempt}")
}

/// Parse `(lease_id, attempt)` back out of a spool file stem
/// (`lease-000007-a2`).
fn parse_lease_stem(stem: &str) -> Option<(usize, usize)> {
    let rest = stem.strip_prefix("lease-")?;
    let (id, attempt) = rest.split_once("-a")?;
    Some((id.parse().ok()?, attempt.parse().ok()?))
}

/// Sorted directory listing (deterministic scan order across hosts and
/// filesystems); a missing directory reads as empty.
fn sorted_dir(dir: &Path) -> Vec<PathBuf> {
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Err(_) => return Vec::new(),
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
    };
    entries.sort();
    entries
}

/// Drive a campaign through a shared-filesystem spool directory —
/// the cross-host [`ExecBackend`]. The module-level docs above cover
/// the spool layout and failure semantics; see
/// [`SpoolWorker`] for the remote half.
///
/// The spool directory must be empty (or absent) — one spool hosts one
/// campaign. Workers can join at any time; the campaign fails if none
/// registers within [`worker_timeout`](SharedFs::worker_timeout), or
/// if all progress stalls longer than the lease and worker timeouts
/// combined.
pub struct SharedFs {
    spool: PathBuf,
    lease_timeout: Duration,
    worker_timeout: Duration,
}

impl SharedFs {
    /// Backend coordinating through `spool` (created if absent).
    pub fn new(spool: impl Into<PathBuf>) -> SharedFs {
        SharedFs {
            spool: spool.into(),
            lease_timeout: Duration::from_secs(300),
            worker_timeout: Duration::from_secs(120),
        }
    }

    /// How long a claimed lease may sit without its event stream
    /// appearing before the claim is presumed dead and the lease
    /// re-queued (default 300 s). Set this well above the cost of the
    /// campaign's most expensive batch: a reclaim of a *live* slow
    /// worker is harmless (results are deterministic and deduplicated)
    /// but wastes its work.
    pub fn lease_timeout(mut self, timeout: Duration) -> SharedFs {
        self.lease_timeout = timeout.max(Duration::from_secs(1));
        self
    }

    /// How long to wait for the first worker registration before
    /// failing the campaign (default 120 s).
    pub fn worker_timeout(mut self, timeout: Duration) -> SharedFs {
        self.worker_timeout = timeout.max(Duration::from_secs(1));
        self
    }

    /// Re-grant every ready lease into `leases/open/` files.
    fn publish_ready(&self, leases: &LeaseQueue) -> Result<(), EngineError> {
        while let Some(lease) = leases.next() {
            let attempt = leases.attempts(lease.lease_id);
            let path = self
                .spool
                .join("leases/open")
                .join(format!("{}.json", lease_file_name(lease.lease_id, attempt)));
            write_atomic(&path, &encode_lease(&lease))?;
        }
        Ok(())
    }

    fn stop(&self, verdict: &str) {
        let _ = write_atomic(&self.spool.join("stop"), verdict);
    }

    /// Fold the workers' cumulative `stats/{name}.json` files into
    /// per-worker telemetry counters, counting only the delta since
    /// the previous harvest (the files are cumulative; counters are
    /// monotonic sums).
    fn harvest_worker_stats(&self, telemetry: &Telemetry, seen: &mut BTreeMap<String, (u64, u64)>) {
        for path in sorted_dir(&self.spool.join("stats")) {
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Some(v) = std::fs::read_to_string(&path)
                .ok()
                .and_then(|s| serde::json::parse(&s).ok())
            else {
                continue; // torn or vanished file; next poll re-reads
            };
            let leases = v.get("leases").and_then(Value::as_u64).unwrap_or(0);
            let cells = v.get("cells").and_then(Value::as_u64).unwrap_or(0);
            let last = seen.entry(name.to_string()).or_insert((0, 0));
            if leases > last.0 {
                telemetry.count(&format!("spool_leases_{name}"), leases - last.0);
            }
            if cells > last.1 {
                telemetry.count(&format!("spool_cells_{name}"), cells - last.1);
            }
            *last = (leases.max(last.0), cells.max(last.1));
        }
    }
}

impl ExecBackend for SharedFs {
    fn name(&self) -> String {
        format!("shared-fs ({})", self.spool.display())
    }

    fn execute(
        &self,
        ctx: &BackendContext<'_>,
        leases: &LeaseQueue,
        deliver: &Deliver<'_>,
    ) -> Result<(), EngineError> {
        let start = Instant::now();
        if ctx.cancel.is_cancelled() {
            return Err(EngineError::cancelled());
        }
        for sub in [
            "leases/open",
            "leases/claimed",
            "events",
            "workers",
            "stats",
        ] {
            std::fs::create_dir_all(self.spool.join(sub)).map_err(|e| {
                EngineError::io(
                    format!("creating spool directory {}", self.spool.display()),
                    e,
                )
            })?;
        }
        let spec_path = self.spool.join("spec.json");
        if spec_path.exists() {
            return Err(EngineError::spec(format!(
                "spool {} already hosts a campaign (found spec.json); \
                 use a fresh directory per campaign",
                self.spool.display()
            )));
        }
        let meta = Value::obj([
            ("name", serde::Serialize::serialize(&ctx.spec.name)),
            (
                "cache",
                match ctx.cache.disk_dir() {
                    Some(dir) => serde::Serialize::serialize(&dir.display().to_string()),
                    None => Value::Null,
                },
            ),
        ]);
        let mut meta_text = String::new();
        serde::json::write_value(&meta, &mut meta_text);
        write_atomic(&self.spool.join("meta.json"), &meta_text)?;
        // spec.json lands last: its appearance is the signal workers
        // wait on, so meta must already be readable.
        write_atomic(&spec_path, &serde::json::to_string(ctx.spec))?;
        self.publish_ready(leases)?;

        let mut worker_stats: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let result = (|| {
            let mut worker_slots: BTreeMap<String, usize> = BTreeMap::new();
            let mut processed_events: HashSet<PathBuf> = HashSet::new();
            let mut last_progress = Instant::now();
            let stall_after = self.lease_timeout + self.worker_timeout;
            loop {
                if ctx.cancel.is_cancelled() {
                    return Err(EngineError::cancelled());
                }
                // New worker registrations → one Hello per worker, slot
                // indices in registration-name order of first sighting.
                for reg in sorted_dir(&self.spool.join("workers")) {
                    let Some(name) = reg.file_stem().and_then(|s| s.to_str()) else {
                        continue;
                    };
                    if worker_slots.contains_key(name) {
                        continue;
                    }
                    let jobs = std::fs::read_to_string(&reg)
                        .ok()
                        .and_then(|s| serde::json::parse(&s).ok())
                        .and_then(|v| v.get("jobs").and_then(Value::as_u64))
                        .map(|j| j as usize);
                    let slot = worker_slots.len();
                    worker_slots.insert(name.to_string(), slot);
                    last_progress = Instant::now();
                    deliver(
                        slot,
                        CampaignEvent::Hello {
                            shard: slot,
                            shard_count: 0,
                            cells: 0,
                            references: 0,
                            version: Some(2),
                            jobs,
                        },
                    )?;
                }
                // Completed (or failed) attempt streams.
                for ev_path in sorted_dir(&self.spool.join("events")) {
                    if ev_path.extension().and_then(|e| e.to_str()) != Some("jsonl")
                        || processed_events.contains(&ev_path)
                    {
                        continue;
                    }
                    let Some((lease_id, _attempt)) = ev_path
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .and_then(parse_lease_stem)
                    else {
                        continue;
                    };
                    processed_events.insert(ev_path.clone());
                    last_progress = Instant::now();
                    if leases.is_completed(lease_id) {
                        continue; // duplicate attempt (reclaimed slow worker)
                    }
                    let text = std::fs::read_to_string(&ev_path).map_err(|e| {
                        EngineError::io(format!("reading event stream {}", ev_path.display()), e)
                    })?;
                    let mut events = Vec::new();
                    let mut why: Option<String> = None;
                    for line in text.lines().filter(|l| !l.trim().is_empty()) {
                        match decode_event(line) {
                            Ok(CampaignEvent::Error { message, kind }) => {
                                let kind = kind.as_deref().unwrap_or("unknown");
                                ctx.telemetry.count(&format!("errors_{kind}"), 1);
                                why = Some(message);
                                break;
                            }
                            Ok(ev) => events.push(ev),
                            Err(e) => {
                                why = Some(e);
                                break;
                            }
                        }
                    }
                    let complete = why.is_none()
                        && matches!(
                            events.last(),
                            Some(CampaignEvent::LeaseDone { lease_id: id, .. }) if *id == lease_id
                        );
                    if complete {
                        for ev in events {
                            deliver(0, ev)?;
                        }
                        leases.complete(lease_id);
                    } else {
                        // Failed attempt: merge nothing (its finished
                        // cells are in the shared cache, so the retry
                        // is cache-first) and re-queue under the
                        // per-lease attempt cap.
                        let why = why.unwrap_or_else(|| "attempt ended without lease_done".into());
                        if !leases.requeue(lease_id) {
                            return Err(EngineError::worker(
                                None,
                                format!(
                                    "lease {lease_id} failed after {} attempts (last: {why})",
                                    leases.attempts(lease_id)
                                ),
                            ));
                        }
                        eprintln!("spool lease {lease_id} failed ({why}); re-queueing");
                        ctx.telemetry.count("worker_retries", 1);
                        self.publish_ready(leases)?;
                    }
                }
                // Stale claims: a claim whose event stream never
                // appeared within the lease timeout is a dead worker.
                for claim in sorted_dir(&self.spool.join("leases/claimed")) {
                    let Some((lease_id, _)) = claim
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .and_then(parse_lease_stem)
                    else {
                        continue;
                    };
                    if leases.is_completed(lease_id) {
                        continue;
                    }
                    let age = claim
                        .metadata()
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok());
                    if age.is_some_and(|a| a > self.lease_timeout) {
                        // Removing the claim is the reclaim lock: only
                        // one coordinator pass can win the remove.
                        if std::fs::remove_file(&claim).is_err() {
                            continue;
                        }
                        if !leases.requeue(lease_id) {
                            return Err(EngineError::worker(
                                None,
                                format!(
                                    "lease {lease_id} failed after {} attempts \
                                     (last: worker lost; claim went stale)",
                                    leases.attempts(lease_id)
                                ),
                            ));
                        }
                        eprintln!("spool lease {lease_id}: claim went stale; re-queueing");
                        ctx.telemetry.count("worker_retries", 1);
                        ctx.telemetry.count("spool_reclaims", 1);
                        self.publish_ready(leases)?;
                        last_progress = Instant::now();
                    }
                }
                self.harvest_worker_stats(ctx.telemetry, &mut worker_stats);
                if leases.is_drained() {
                    // One last harvest after the final drain poll would
                    // still race the workers' post-lease stats write;
                    // the grace pass below (after `stop`) settles it.
                    return Ok(());
                }
                if worker_slots.is_empty() && start.elapsed() > self.worker_timeout {
                    return Err(EngineError::worker(
                        None,
                        format!(
                            "no spool worker registered in {} within {:.0?} — \
                             launch `sweep-worker --spool` on a host sharing the filesystem",
                            self.spool.display(),
                            self.worker_timeout
                        ),
                    ));
                }
                if last_progress.elapsed() > stall_after {
                    return Err(EngineError::worker(
                        None,
                        format!(
                            "spool campaign stalled: no lease progress for {stall_after:.0?} \
                             ({} of {} leases completed)",
                            leases.completed_count(),
                            leases.total()
                        ),
                    ));
                }
                std::thread::sleep(POLL);
            }
        })();
        match &result {
            Ok(()) => self.stop("done"),
            Err(_) => self.stop("abort"),
        }
        if result.is_ok() {
            // Grace pass: a worker writes its stats file just *after*
            // publishing the event stream that drained the queue, so
            // give the last cumulative writes a moment to land before
            // the final fold into the counters.
            let total = leases.completed_count() as u64;
            let grace = Instant::now();
            loop {
                self.harvest_worker_stats(ctx.telemetry, &mut worker_stats);
                let harvested: u64 = worker_stats.values().map(|(l, _)| *l).sum();
                if harvested >= total || grace.elapsed() > Duration::from_secs(2) {
                    break;
                }
                std::thread::sleep(POLL);
            }
        }
        result?;
        deliver(
            COORDINATOR_SOURCE,
            CampaignEvent::Done {
                hits: 0,
                misses: 0,
                wall_s: start.elapsed().as_secs_f64(),
            },
        )
    }
}

/// What a [`SpoolWorker`] session accomplished.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpoolSummary {
    /// Lease attempts this worker completed successfully.
    pub leases: usize,
    /// Cells across those attempts.
    pub cells: usize,
}

/// The remote half of a [`SharedFs`] campaign: one worker process on
/// any host sharing the spool filesystem (the engine behind
/// `sweep-worker --spool DIR`).
///
/// [`run`](SpoolWorker::run) waits for the coordinator's `spec.json`,
/// registers under [`name`](SpoolWorker::name), then claims and
/// executes leases with `jobs` threads until the coordinator writes
/// the `stop` file. Results go to the shared cache named in
/// `meta.json` (override with [`cache_dir`](SpoolWorker::cache_dir) /
/// [`no_cache`](SpoolWorker::no_cache)); each attempt's event stream
/// is published atomically to `events/`. A worker may join or die at
/// any point — the coordinator re-queues whatever it abandoned.
pub struct SpoolWorker {
    spool: PathBuf,
    name: String,
    jobs: Option<usize>,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    max_wait: Duration,
}

impl SpoolWorker {
    /// Worker session over `spool`. Default name `worker-{pid}`,
    /// thread count = this host's cores (each host caps itself — peer
    /// count is unknown and irrelevant under leasing).
    pub fn new(spool: impl Into<PathBuf>) -> SpoolWorker {
        SpoolWorker {
            spool: spool.into(),
            name: format!("worker-{}", std::process::id()),
            jobs: None,
            cache_dir: None,
            no_cache: false,
            max_wait: Duration::from_secs(60),
        }
    }

    /// Registration name (must be unique across the campaign's
    /// workers; the default embeds the pid, so collisions only happen
    /// across hosts with colliding pids — pass hostnames there).
    pub fn name(mut self, name: impl Into<String>) -> SpoolWorker {
        self.name = name.into();
        self
    }

    /// Cap this worker's threads (default: every core of this host).
    pub fn jobs(mut self, jobs: usize) -> SpoolWorker {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Use this result-cache directory instead of the one `meta.json`
    /// names (e.g. when the shared cache mounts at a different path on
    /// this host).
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> SpoolWorker {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Run without a disk cache (correct but recomputes everything the
    /// cache would have shared).
    pub fn no_cache(mut self) -> SpoolWorker {
        self.no_cache = true;
        self
    }

    /// How long to wait for the coordinator's `spec.json` before
    /// giving up (default 60 s).
    pub fn max_wait(mut self, wait: Duration) -> SpoolWorker {
        self.max_wait = wait;
        self
    }

    fn stopped(&self) -> bool {
        self.spool.join("stop").exists()
    }

    /// Serve the spool until the coordinator stops the campaign.
    pub fn run(self) -> Result<SpoolSummary, EngineError> {
        // Wait for the campaign to appear (spec.json is written last,
        // so meta.json is readable once it exists).
        let spec_path = self.spool.join("spec.json");
        let waited = Instant::now();
        while !spec_path.exists() {
            if self.stopped() {
                return Ok(SpoolSummary {
                    leases: 0,
                    cells: 0,
                });
            }
            if waited.elapsed() > self.max_wait {
                return Err(EngineError::worker(
                    None,
                    format!(
                        "no campaign appeared in spool {} within {:.0?}",
                        self.spool.display(),
                        self.max_wait
                    ),
                ));
            }
            std::thread::sleep(POLL);
        }
        let spec_text = std::fs::read_to_string(&spec_path)
            .map_err(|e| EngineError::io(format!("reading {}", spec_path.display()), e))?;
        let spec: SweepSpec = serde::json::from_str(&spec_text)
            .map_err(|e| EngineError::spec(format!("bad spool spec.json: {e}")))?;
        spec.validate()?;
        let meta = std::fs::read_to_string(self.spool.join("meta.json"))
            .ok()
            .and_then(|s| serde::json::parse(&s).ok());
        let cache = if self.no_cache {
            crate::cache::ResultCache::in_memory()
        } else if let Some(dir) = &self.cache_dir {
            crate::cache::ResultCache::on_disk(dir)
        } else {
            match meta
                .as_ref()
                .and_then(|m| m.get("cache"))
                .and_then(Value::as_str)
            {
                Some(dir) => crate::cache::ResultCache::on_disk(dir),
                None => crate::cache::ResultCache::in_memory(),
            }
        };
        let jobs = self
            .jobs
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let _jobs_cap = apply_jobs_cap(Some(jobs))?;
        let registry = EstimatorRegistry::standard();
        let plan = CampaignPlan::new(&spec, &registry)?;
        let telemetry = Telemetry::disabled();
        let cancel = crate::cancel::CancelToken::new();
        let ctx = BackendContext {
            spec: &spec,
            registry: &registry,
            cache: &cache,
            telemetry: &telemetry,
            cancel: &cancel,
            plan: &plan,
        };
        let executor = LeaseExecutor::new(&ctx);
        let registration = Value::obj([
            ("name", serde::Serialize::serialize(&self.name)),
            ("jobs", serde::Serialize::serialize(&jobs)),
            (
                "pid",
                serde::Serialize::serialize(&(std::process::id() as u64)),
            ),
        ]);
        let mut registration_text = String::new();
        serde::json::write_value(&registration, &mut registration_text);
        write_atomic(
            &self
                .spool
                .join("workers")
                .join(format!("{}.json", self.name)),
            &registration_text,
        )?;
        let done_leases = AtomicUsize::new(0);
        let done_cells = AtomicUsize::new(0);
        let stats_lock: Mutex<()> = Mutex::new(());
        let abort: Mutex<Option<EngineError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(plan.leases().len()).max(1) {
                let this = &self;
                let executor = &executor;
                let abort = &abort;
                let done_leases = &done_leases;
                let done_cells = &done_cells;
                let stats_lock = &stats_lock;
                scope.spawn(move || {
                    while !this.stopped() && abort.lock().expect("abort slot").is_none() {
                        let Some((lease, attempt_stem)) = this.claim_next() else {
                            std::thread::sleep(POLL);
                            continue;
                        };
                        match this.run_claim(executor, &lease, &attempt_stem) {
                            Ok(()) => {
                                done_leases.fetch_add(1, Ordering::Relaxed);
                                done_cells.fetch_add(lease.cells.len(), Ordering::Relaxed);
                                this.publish_stats(done_leases, done_cells, stats_lock);
                            }
                            Err(e) => {
                                abort.lock().expect("abort slot").get_or_insert(e);
                                return;
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = abort.into_inner().expect("abort slot") {
            return Err(e);
        }
        Ok(SpoolSummary {
            leases: done_leases.load(Ordering::Relaxed),
            cells: done_cells.load(Ordering::Relaxed),
        })
    }

    /// Publish this worker's cumulative progress to
    /// `stats/{name}.json`. The counters are re-read under the lock so
    /// concurrent completions always publish monotonically
    /// non-decreasing totals; failures are ignored (stats are
    /// observability, never correctness).
    fn publish_stats(&self, done_leases: &AtomicUsize, done_cells: &AtomicUsize, lock: &Mutex<()>) {
        let _guard = lock.lock().expect("stats lock");
        let payload = Value::obj([
            ("name", serde::Serialize::serialize(&self.name)),
            (
                "leases",
                serde::Serialize::serialize(&(done_leases.load(Ordering::Relaxed) as u64)),
            ),
            (
                "cells",
                serde::Serialize::serialize(&(done_cells.load(Ordering::Relaxed) as u64)),
            ),
        ]);
        let mut text = String::new();
        serde::json::write_value(&payload, &mut text);
        let stats_dir = self.spool.join("stats");
        let _ = std::fs::create_dir_all(&stats_dir);
        let _ = write_atomic(&stats_dir.join(format!("{}.json", self.name)), &text);
    }

    /// Claim the first open lease by renaming it into `claimed/`; the
    /// rename race picks exactly one winner per file.
    fn claim_next(&self) -> Option<(WorkLease, String)> {
        for open in sorted_dir(&self.spool.join("leases/open")) {
            if open.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(stem) = open.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let claimed = self
                .spool
                .join("leases/claimed")
                .join(open.file_name().expect("lease file name"));
            if std::fs::rename(&open, &claimed).is_err() {
                continue; // another worker won this one
            }
            let Ok(text) = std::fs::read_to_string(&claimed) else {
                continue;
            };
            match decode_lease(&text) {
                Ok(lease) => return Some((lease, stem.to_string())),
                Err(_) => continue, // torn file; the coordinator re-queues it
            }
        }
        None
    }

    /// Execute one claimed lease, streaming its events to a tmp file
    /// published atomically at the end — with an `Error` tail when the
    /// attempt failed, so the coordinator re-queues promptly instead of
    /// waiting out the stale-claim timeout.
    fn run_claim(
        &self,
        executor: &LeaseExecutor<'_>,
        lease: &WorkLease,
        stem: &str,
    ) -> Result<(), EngineError> {
        let final_path = self.spool.join("events").join(format!("{stem}.jsonl"));
        let tmp = final_path.with_extension(format!("jsonl.tmp.{}", std::process::id()));
        let file = std::fs::File::create(&tmp)
            .map_err(|e| EngineError::io(format!("creating {}", tmp.display()), e))?;
        let out = Mutex::new(std::io::BufWriter::new(file));
        let emit = |ev: CampaignEvent| -> Result<(), EngineError> {
            let mut out = out.lock().expect("event stream");
            writeln!(out, "{}", encode_event(&ev))
                .map_err(|e| EngineError::io("writing spool event stream", e))
        };
        let run = executor.run(lease, &emit);
        if let Err(e) = &run {
            let _ = emit(CampaignEvent::Error {
                message: e.to_string(),
                kind: Some(e.kind().to_string()),
            });
        }
        {
            let mut out = out.lock().expect("event stream");
            out.flush()
                .map_err(|e| EngineError::io("flushing spool event stream", e))?;
        }
        std::fs::rename(&tmp, &final_path)
            .map_err(|e| EngineError::io(format!("publishing {}", final_path.display()), e))?;
        let _ = std::fs::remove_file(
            self.spool
                .join("leases/claimed")
                .join(format!("{stem}.json")),
        );
        run
    }
}
