//! The [`Campaign`] facade: one typed, embeddable entry point for the
//! whole engine.
//!
//! A campaign is the paper's evaluation unit — a grid of
//! (DAG × failure model × estimator) cells compared against Monte-Carlo
//! references — and this module gives it a single lifecycle:
//!
//! ```text
//! Campaign::builder(spec)      // typed SweepSpec, typed EstimatorSpecs
//!     .cache(...)              // shared content-addressed ResultCache
//!     .sink(...)               // ordered row consumers (CSV/JSONL/…)
//!     .observer(...)           // completion-order event subscribers
//!     .backend(...)            // how cells execute (see ExecBackend)
//!     .build()?                // validates everything up front
//!     .run()?                  // or .resume_report() / .dry_run()
//! ```
//!
//! Every backend reports work through the same
//! [`CampaignEvent`] stream; the campaign core merges that stream once
//! — re-sequencing rows for the sinks, feeding observers, enforcing
//! completeness — so output bytes are identical no matter which
//! backend produced the events.

use crate::cache::{cell_key, ResultCache};
use crate::cancel::CancelToken;
use crate::error::EngineError;
use crate::observer::CampaignObserver;
use crate::progress::{ProgressMode, ProgressReporter};
use crate::protocol::{decode_event, CampaignEvent};
use crate::registry::EstimatorRegistry;
use crate::runner::{
    derive_seed, expand, resume_report_impl, Expansion, ResumeReport, SweepOutcome,
};
use crate::shard::{execute_shard, shard_of, ShardOutcome};
use crate::sink::{summarize, Reorderer, ResultSink, SweepRow};
use crate::spec::SweepSpec;
use crate::telemetry::Telemetry;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;
use stochdag_dag::structural_hash;

/// What a backend needs to execute a campaign: the validated spec and
/// the shared estimator registry and result cache.
pub struct BackendContext<'a> {
    /// The validated campaign spec.
    pub spec: &'a SweepSpec,
    /// Estimator factory.
    pub registry: &'a EstimatorRegistry,
    /// Shared result cache (multi-process backends hand its
    /// [`ResultCache::disk_dir`] to worker processes).
    pub cache: &'a ResultCache,
    /// The campaign's telemetry collector (disabled by default).
    /// Backends pass it to shard executors; multi-process backends
    /// additionally check [`Telemetry::is_enabled`] to decide whether
    /// workers should collect and report snapshots.
    pub telemetry: &'a Telemetry,
    /// Cooperative stop flag. In-process backends hand it to the shard
    /// executor (checked between cells); process-spawning backends
    /// should poll it at their own convenient boundaries (e.g. between
    /// waves) and stop early with
    /// [`EngineError::cancelled`] when set.
    pub cancel: &'a CancelToken,
}

/// Event delivery callback handed to backends: `(source shard, event)`.
/// Must be callable from any backend thread.
pub type Deliver<'a> = dyn Fn(usize, CampaignEvent) -> Result<(), EngineError> + Sync + 'a;

/// An execution strategy for a campaign's cells.
///
/// This trait is the **extension seam of the engine**: a backend owns
/// *where and how* cells run, and reports everything it does through
/// the one [`CampaignEvent`] vocabulary — `Hello` when a shard accepts
/// work, `Reference`/`Cell` per completion, `Done` per finished shard.
/// The campaign core is backend-agnostic: it merges events, re-orders
/// rows, and checks completeness identically for every implementation,
/// which is what makes backend outputs byte-identical.
///
/// Shipped backends:
///
/// * [`InProcess`] — the work-stealing parallel runner in this
///   process (one shard covering every cell).
/// * [`MultiProcess`] — N `sweep-worker` processes on this machine
///   sharing the on-disk cache, with single-retry of crashed shards.
///
/// A future **cross-host** backend slots in here without touching the
/// core: it would spawn workers over ssh (or poll a shared
/// filesystem), point them at a shared cache directory, and forward
/// their protocol streams to `deliver` — exactly what [`MultiProcess`]
/// does with local pipes. Nothing outside the backend changes, because
/// the wire format ([`crate::encode_event`]) already is the event
/// type.
pub trait ExecBackend: Send + Sync {
    /// Human-readable backend name (diagnostics, dry runs).
    fn name(&self) -> String;

    /// How many shards the campaign's cells are partitioned into.
    fn worker_count(&self) -> usize;

    /// Execute every cell, delivering each event (tagged with its
    /// source shard) as it happens. Must deliver a `Hello` and a
    /// `Done` for every shard in `0..worker_count()`.
    fn execute(&self, ctx: &BackendContext<'_>, deliver: &Deliver<'_>) -> Result<(), EngineError>;
}

/// Execute the campaign on this process's thread pool (the
/// work-stealing parallel runner): one shard covering every cell,
/// grouped by DAG source so each instance freezes once and each
/// (instance × estimator) pair prepares once.
pub struct InProcess;

impl ExecBackend for InProcess {
    fn name(&self) -> String {
        "in-process".into()
    }

    fn worker_count(&self) -> usize {
        1
    }

    fn execute(&self, ctx: &BackendContext<'_>, deliver: &Deliver<'_>) -> Result<(), EngineError> {
        execute_shard(
            ctx.spec,
            ctx.registry,
            ctx.cache,
            ctx.telemetry,
            ctx.cancel,
            0,
            1,
            &|ev| deliver(0, ev),
        )
        .map(|_| ())
    }
}

/// Distribute the campaign over N worker **processes** on this machine.
///
/// Cells are partitioned deterministically by cache key
/// ([`shard_of`]); each worker executes one shard cache-first against
/// the shared on-disk cache and streams line-delimited JSON
/// [`CampaignEvent`]s back over its stdout pipe. A shard whose worker
/// fails — non-zero exit, torn or corrupt stream, missing `Done` — is
/// **re-spawned once**: the retry runs cache-first, so cells the
/// crashed worker already finished are served from the shared cache
/// and only the remainder recomputes. Events the failed attempt
/// already delivered are deduplicated by the campaign core (they are
/// deterministic, so the retry's copies are identical).
///
/// Workers default to `current_exe()` + `sweep-worker` (correct when
/// the embedding binary is the `stochdag` CLI); embedders point
/// [`MultiProcess::launcher`] at a `stochdag` binary instead.
pub struct MultiProcess {
    workers: usize,
    launcher: Option<(PathBuf, Vec<String>)>,
}

impl MultiProcess {
    /// Backend spawning `workers` processes.
    pub fn new(workers: usize) -> MultiProcess {
        MultiProcess {
            workers,
            launcher: None,
        }
    }

    /// Use `program args…` as the worker command instead of
    /// `current_exe() sweep-worker`. The backend appends
    /// `--spec-json PATH --shard I --of N` plus `--cache DIR` /
    /// `--no-cache`, and `--telemetry` when the campaign runs with an
    /// enabled [`Telemetry`] collector.
    pub fn launcher(mut self, program: impl Into<PathBuf>, args: Vec<String>) -> MultiProcess {
        self.launcher = Some((program.into(), args));
        self
    }

    fn spawn_worker(
        &self,
        ctx: &BackendContext<'_>,
        spec_path: &std::path::Path,
        shard: usize,
    ) -> Result<Child, EngineError> {
        let (program, base_args) = match &self.launcher {
            Some((p, a)) => (p.clone(), a.clone()),
            None => (
                std::env::current_exe().map_err(|e| EngineError::io("locating own binary", e))?,
                vec!["sweep-worker".to_string()],
            ),
        };
        let mut cmd = Command::new(program);
        cmd.args(base_args)
            .arg("--spec-json")
            .arg(spec_path)
            .arg("--shard")
            .arg(shard.to_string())
            .arg("--of")
            .arg(self.workers.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        match ctx.cache.disk_dir() {
            Some(dir) => {
                cmd.arg("--cache").arg(dir);
            }
            None => {
                cmd.arg("--no-cache");
            }
        }
        if ctx.telemetry.is_enabled() {
            cmd.arg("--telemetry");
        }
        ctx.telemetry.count("worker_spawns", 1);
        cmd.spawn()
            .map_err(|e| EngineError::worker(shard, format!("spawning sweep worker: {e}")))
    }

    /// Run one wave of workers over `shards`; returns the shards that
    /// failed, each with a description. Worker `Error` events are
    /// converted into failures (not delivered) so a retried shard does
    /// not abort the merge.
    fn run_wave(
        &self,
        ctx: &BackendContext<'_>,
        deliver: &Deliver<'_>,
        spec_path: &std::path::Path,
        shards: &[usize],
    ) -> Result<Vec<(usize, String)>, EngineError> {
        let mut children: Vec<(usize, Child)> = Vec::with_capacity(shards.len());
        for &shard in shards {
            match self.spawn_worker(ctx, spec_path, shard) {
                Ok(child) => children.push((shard, child)),
                Err(e) => {
                    // Don't leave earlier workers running against a
                    // campaign that will never be merged.
                    for (_, mut c) in children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    return Err(e);
                }
            }
        }
        let failures: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let deliver_error: Mutex<Option<EngineError>> = Mutex::new(None);
        let telemetry = ctx.telemetry;
        std::thread::scope(|scope| {
            for (shard, child) in children.iter_mut() {
                let shard = *shard;
                let stdout = child.stdout.take().expect("stdout piped");
                let failures = &failures;
                let deliver_error = &deliver_error;
                scope.spawn(move || {
                    // After a corrupt line the stream is untrusted, but
                    // it is still drained to EOF: closing the pipe
                    // early would kill a live worker mid-write (EPIPE)
                    // instead of letting it finish — its results are in
                    // the shared cache regardless.
                    let mut saw_done = false;
                    let mut fail: Option<String> = None;
                    for line in std::io::BufReader::new(stdout).lines() {
                        let Ok(line) = line else {
                            fail.get_or_insert("stream broke mid-read".into());
                            break;
                        };
                        if fail.is_some() {
                            continue;
                        }
                        match decode_event(&line) {
                            Err(e) => {
                                fail = Some(e);
                            }
                            Ok(CampaignEvent::Error { message, kind }) => {
                                // Tally every worker failure by kind —
                                // including attempts whose shard a
                                // retry later completes, which never
                                // surface as a campaign error.
                                let kind = kind.as_deref().unwrap_or("unknown");
                                telemetry.count(&format!("errors_{kind}"), 1);
                                fail = Some(message);
                            }
                            Ok(ev) => {
                                saw_done |= matches!(ev, CampaignEvent::Done { .. });
                                if let Err(e) = deliver(shard, ev) {
                                    deliver_error
                                        .lock()
                                        .expect("deliver error slot")
                                        .get_or_insert(e);
                                    return;
                                }
                            }
                        }
                    }
                    if fail.is_none() && !saw_done {
                        fail = Some("stream ended before its done event".into());
                    }
                    if let Some(f) = fail {
                        failures.lock().expect("failure list").push((shard, f));
                    }
                });
            }
        });
        let mut failures = failures.into_inner().expect("failure list");
        for (shard, mut child) in children {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    if !failures.iter().any(|(s, _)| *s == shard) {
                        failures.push((shard, format!("exited with {status}")));
                    }
                }
                Err(e) => failures.push((shard, format!("wait failed: {e}"))),
            }
        }
        if let Some(e) = deliver_error.into_inner().expect("deliver error slot") {
            return Err(e);
        }
        failures.sort_by_key(|(s, _)| *s);
        failures.dedup_by_key(|(s, _)| *s);
        Ok(failures)
    }
}

impl ExecBackend for MultiProcess {
    fn name(&self) -> String {
        format!("multi-process ({} workers)", self.workers)
    }

    fn worker_count(&self) -> usize {
        self.workers
    }

    fn execute(&self, ctx: &BackendContext<'_>, deliver: &Deliver<'_>) -> Result<(), EngineError> {
        if self.workers == 0 {
            return Err(EngineError::spec("worker count must be positive"));
        }
        // Hand the spec to the workers as a temp JSON file — they
        // re-derive the identical cell partition from it. Without an
        // explicit --jobs, split the machine's cores across the worker
        // processes (an uncapped worker would build a full-size thread
        // pool, oversubscribing the host N-fold); with --jobs J, the
        // cap is per worker. Either way results are identical — the
        // thread count cannot change any value.
        let mut worker_spec = ctx.spec.clone();
        if worker_spec.jobs.is_none() {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            worker_spec.jobs = Some((cores / self.workers).max(1));
        }
        // Named by (pid, campaign counter) — not spec.name, which is
        // user-controlled and may contain path separators. The counter
        // matters for embedders: two concurrent `Campaign::run()`s in
        // one process must not clobber (or delete) each other's spec.
        static SPEC_SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let spec_path = std::env::temp_dir().join(format!(
            "stochdag-spec-{}-{}.json",
            std::process::id(),
            SPEC_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::write(&spec_path, serde::json::to_string(&worker_spec)).map_err(|e| {
            EngineError::io(format!("writing worker spec {}", spec_path.display()), e)
        })?;
        let result = (|| {
            // Workers can't observe the coordinator's token, so the
            // cooperative-stop granularity here is a wave boundary:
            // checked before launch and again before the retry wave.
            if ctx.cancel.is_cancelled() {
                return Err(EngineError::cancelled());
            }
            let first = self.run_wave(
                ctx,
                deliver,
                &spec_path,
                &(0..self.workers).collect::<Vec<_>>(),
            )?;
            if first.is_empty() {
                return Ok(());
            }
            if ctx.cancel.is_cancelled() {
                return Err(EngineError::cancelled());
            }
            // Single retry, cache-first: cells the crashed worker
            // already finished are served from the shared cache.
            for (shard, why) in &first {
                eprintln!("sweep worker {shard} failed ({why}); retrying its shard once");
            }
            let retry_shards: Vec<usize> = first.iter().map(|(s, _)| *s).collect();
            ctx.telemetry
                .count("worker_retries", retry_shards.len() as u64);
            let second = self.run_wave(ctx, deliver, &spec_path, &retry_shards)?;
            match second.into_iter().next() {
                None => Ok(()),
                Some((shard, why)) => Err(EngineError::worker(
                    shard,
                    format!("shard failed twice (last: {why})"),
                )),
            }
        })();
        let _ = std::fs::remove_file(&spec_path);
        result
    }
}

/// Merges a campaign's event stream: per-shard bookkeeping, row
/// re-sequencing into the sinks, first-error capture, and the
/// completeness checks that make backend outputs interchangeable.
///
/// `dedup` mode (the [`Campaign`] core) tolerates a shard delivering
/// events twice — what a [`MultiProcess`] retry produces — by keeping
/// the first copy of every cell and counting each shard's totals once.
/// Strict mode ([`crate::merge_event_streams`], which replays logged
/// streams with no retry semantics) treats any repeat as a protocol
/// violation.
pub(crate) struct Merge {
    dedup: bool,
    reorder: Reorderer,
    rows: Vec<SweepRow>,
    hellos: usize,
    dones: usize,
    hello_shards: BTreeMap<usize, (usize, usize)>,
    done_shards: BTreeSet<usize>,
    seen_cells: HashSet<usize>,
    refs_seen: BTreeMap<usize, usize>,
    telemetry_shards: BTreeSet<usize>,
    total_cells: usize,
    total_refs: usize,
    cache_hits: usize,
    cache_misses: usize,
    cells_computed: usize,
    cells_memory_hits: usize,
    cells_disk_hits: usize,
    first_error: Option<EngineError>,
}

/// What [`Merge::finalize`] produces on success: the re-sequenced rows
/// plus the campaign totals, with the cell cache-tier tallies
/// deduplicated by global index (backend-invariant).
pub(crate) struct Merged {
    pub(crate) rows: Vec<SweepRow>,
    pub(crate) cells: usize,
    pub(crate) references: usize,
    pub(crate) cache_hits: usize,
    pub(crate) cache_misses: usize,
    pub(crate) cells_computed: usize,
    pub(crate) cells_memory_hits: usize,
    pub(crate) cells_disk_hits: usize,
}

impl Merge {
    pub(crate) fn new(dedup: bool) -> Merge {
        Merge {
            dedup,
            reorder: Reorderer::new(),
            rows: Vec::new(),
            hellos: 0,
            dones: 0,
            hello_shards: BTreeMap::new(),
            done_shards: BTreeSet::new(),
            seen_cells: HashSet::new(),
            refs_seen: BTreeMap::new(),
            telemetry_shards: BTreeSet::new(),
            total_cells: 0,
            total_refs: 0,
            cache_hits: 0,
            cache_misses: 0,
            cells_computed: 0,
            cells_memory_hits: 0,
            cells_disk_hits: 0,
            first_error: None,
        }
    }

    pub(crate) fn record_error(&mut self, e: EngineError) {
        self.first_error.get_or_insert(e);
    }

    pub(crate) fn has_error(&self) -> bool {
        self.first_error.is_some()
    }

    /// Dedup gate (dedup mode only): returns `true` when this event
    /// re-delivers something already merged — a retried shard's
    /// duplicate — so neither observers (progress counters!) nor the
    /// row pipeline see it twice. References carry no index, so they
    /// are capped at the count the shard's `Hello` announced.
    pub(crate) fn is_duplicate(&mut self, source: usize, event: &CampaignEvent) -> bool {
        if !self.dedup {
            return false;
        }
        match event {
            CampaignEvent::Hello { shard, .. } => self.hello_shards.contains_key(shard),
            CampaignEvent::Reference { .. } => {
                let cap = self
                    .hello_shards
                    .get(&source)
                    .map_or(usize::MAX, |&(_, refs)| refs);
                let seen = self.refs_seen.entry(source).or_insert(0);
                if *seen >= cap {
                    true
                } else {
                    *seen += 1;
                    false
                }
            }
            CampaignEvent::Cell { index, .. } => self.seen_cells.contains(index),
            CampaignEvent::Done { .. } => self.done_shards.contains(&source),
            CampaignEvent::Error { .. } => false,
            // A retried shard re-sends its snapshot; merge each
            // shard's telemetry exactly once.
            CampaignEvent::Telemetry { shard, .. } => !self.telemetry_shards.insert(*shard),
            CampaignEvent::Unknown { .. } => false,
        }
    }

    pub(crate) fn observe(
        &mut self,
        source: usize,
        event: CampaignEvent,
        sinks: &mut [&mut dyn ResultSink],
    ) {
        match event {
            CampaignEvent::Hello {
                shard,
                cells,
                references,
                ..
            } => {
                self.hellos += 1;
                if self.dedup {
                    // A retried shard re-announces identical totals;
                    // count each shard once.
                    self.hello_shards
                        .entry(shard)
                        .or_insert((cells, references));
                } else {
                    self.total_cells += cells;
                    self.total_refs += references;
                }
            }
            CampaignEvent::Reference { .. } => {}
            CampaignEvent::Cell {
                index, tier, row, ..
            } => {
                if self.dedup && !self.seen_cells.insert(index) {
                    return;
                }
                match tier {
                    None => self.cells_computed += 1,
                    Some(crate::cache::CacheTier::Memory) => self.cells_memory_hits += 1,
                    Some(crate::cache::CacheTier::Disk) => self.cells_disk_hits += 1,
                }
                let rows = &mut self.rows;
                let mut failed_cell: Option<String> = None;
                let emit_result = self.reorder.push(index, row, |r| {
                    // Collect first: a sink failure aborts the sweep
                    // with an error, but the row set stays complete.
                    rows.push(r.clone());
                    for sink in sinks.iter_mut() {
                        if let Err(e) = sink.row(r) {
                            failed_cell =
                                Some(format!("{} / {} / {}", r.dag, r.model, r.estimator));
                            return Err(e);
                        }
                    }
                    Ok(())
                });
                if let Err(e) = emit_result {
                    self.first_error
                        .get_or_insert(EngineError::sink(failed_cell, format!("sink row: {e}")));
                }
            }
            CampaignEvent::Done { hits, misses, .. } => {
                self.dones += 1;
                if !self.dedup || self.done_shards.insert(source) {
                    self.cache_hits += hits;
                    self.cache_misses += misses;
                }
            }
            CampaignEvent::Error { message, .. } => {
                self.first_error
                    .get_or_insert(EngineError::worker(source, message));
            }
            // Snapshot merging is the campaign core's business (it
            // owns the Telemetry handle); unknown events are a newer
            // writer's vocabulary — neither affects row bookkeeping.
            CampaignEvent::Telemetry { .. } | CampaignEvent::Unknown { .. } => {}
        }
    }

    /// Final completeness checks; on success returns the re-sequenced
    /// rows and campaign totals.
    pub(crate) fn finalize(mut self, expected_workers: usize) -> Result<Merged, EngineError> {
        if let Some(e) = self.first_error.take() {
            return Err(e);
        }
        let (started, completed) = if self.dedup {
            (self.hello_shards.len(), self.done_shards.len())
        } else {
            (self.hellos, self.dones)
        };
        if started != expected_workers || completed != expected_workers {
            return Err(EngineError::worker(
                None,
                format!(
                    "only {completed} of {expected_workers} worker(s) completed their shard \
                     ({started} started) — a worker crashed or was killed"
                ),
            ));
        }
        if self.dedup {
            self.total_cells = self.hello_shards.values().map(|&(c, _)| c).sum();
            self.total_refs = self.hello_shards.values().map(|&(_, r)| r).sum();
        }
        if self.reorder.pending() != 0 || self.rows.len() != self.total_cells {
            return Err(EngineError::worker(
                None,
                format!(
                    "merged {} of {} announced cells ({} out-of-sequence) — \
                     shards overlapped or dropped cells",
                    self.rows.len(),
                    self.total_cells,
                    self.reorder.pending()
                ),
            ));
        }
        Ok(Merged {
            rows: self.rows,
            cells: self.total_cells,
            references: self.total_refs,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cells_computed: self.cells_computed,
            cells_memory_hits: self.cells_memory_hits,
            cells_disk_hits: self.cells_disk_hits,
        })
    }
}

/// One concrete DAG instance in a [`DryRun`] report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DryRunInstance {
    /// Instance id (e.g. `"lu:k=8"`).
    pub id: String,
    /// Task count.
    pub tasks: usize,
    /// Edge count.
    pub edges: usize,
}

/// What a campaign *would* execute — the full expansion, without
/// running (or probing) anything. See [`Campaign::dry_run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DryRun {
    /// Campaign name.
    pub name: String,
    /// Backend description.
    pub backend: String,
    /// Canonical estimator ids, in spec order.
    pub estimators: Vec<String>,
    /// Materialized DAG instances, in spec order.
    pub instances: Vec<DryRunInstance>,
    /// Failure models per instance.
    pub models: usize,
    /// Total estimator cells.
    pub cells: usize,
    /// Monte-Carlo reference scenarios.
    pub references: usize,
    /// Cells each shard would own under the backend's worker count.
    pub shard_cells: Vec<usize>,
}

/// A fully-configured campaign: the one handle behind `sweep`-style
/// executions, resume reports, and dry runs (see the
/// crate docs and [`Campaign::builder`]).
pub struct Campaign {
    spec: SweepSpec,
    registry: EstimatorRegistry,
    cache: Arc<ResultCache>,
    backend: Box<dyn ExecBackend>,
    sinks: Vec<Box<dyn ResultSink>>,
    observers: Vec<Box<dyn CampaignObserver>>,
    telemetry: Telemetry,
    cancel: CancelToken,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("spec", &self.spec.name)
            .field("backend", &self.backend.name())
            .field("sinks", &self.sinks.len())
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl Campaign {
    /// Start configuring a campaign for `spec`. Defaults: the standard
    /// registry, an in-memory cache, the [`InProcess`] backend, no
    /// sinks, no observers.
    pub fn builder(spec: SweepSpec) -> CampaignBuilder {
        CampaignBuilder {
            spec,
            registry: EstimatorRegistry::standard(),
            cache: Arc::new(ResultCache::in_memory()),
            backend: Box::new(InProcess),
            sinks: Vec::new(),
            observers: Vec::new(),
            jobs: None,
            telemetry: Telemetry::disabled(),
            cancel: CancelToken::new(),
        }
    }

    /// The campaign's validated spec.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The campaign's result cache (e.g. for a post-run
    /// [`ResultCache::gc_disk`]).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Execute every cell on the configured backend, streaming ordered
    /// rows into the sinks and raw events into the observers.
    pub fn run(self) -> Result<SweepOutcome, EngineError> {
        let Campaign {
            spec,
            registry,
            cache,
            backend,
            mut sinks,
            mut observers,
            telemetry,
            cancel,
        } = self;
        let mut sink_refs: Vec<&mut dyn ResultSink> = sinks
            .iter_mut()
            .map(|b| &mut **b as &mut dyn ResultSink)
            .collect();
        Campaign::run_core(
            &spec,
            &registry,
            &cache,
            backend.as_ref(),
            &mut observers,
            &mut sink_refs,
            &telemetry,
            &cancel,
        )
    }

    /// Diff the spec against the cache — per-estimator and per-shard
    /// hit/miss counts under the configured backend's worker count —
    /// without computing anything or perturbing the cache.
    pub fn resume_report(&self) -> Result<ResumeReport, EngineError> {
        resume_report_impl(
            &self.spec,
            &self.registry,
            &self.cache,
            self.backend.worker_count(),
        )
    }

    /// Expand the campaign — instances, models, estimators, cell and
    /// reference counts, per-shard cell loads — without executing or
    /// probing anything.
    pub fn dry_run(&self) -> Result<DryRun, EngineError> {
        let Expansion {
            estimator_ids,
            instances,
            models,
            ..
        } = expand(&self.spec, &self.registry)?;
        let shard_count = self.backend.worker_count().max(1);
        let e_count = estimator_ids.len();
        let hashes: Vec<u128> = instances.iter().map(|i| structural_hash(&i.dag)).collect();
        let mut shard_cells = vec![0usize; shard_count];
        for (i, inst_models) in models.iter().enumerate() {
            for (model, _) in inst_models {
                for (_, canonical) in &estimator_ids {
                    let seed = derive_seed(self.spec.seed, hashes[i], model.lambda, canonical);
                    let key = cell_key(hashes[i], model.lambda, canonical, seed);
                    shard_cells[shard_of(&key, shard_count)] += 1;
                }
            }
        }
        let m_count = self.spec.pfails.len() + self.spec.lambdas.len();
        Ok(DryRun {
            name: self.spec.name.clone(),
            backend: self.backend.name(),
            estimators: estimator_ids.into_iter().map(|(_, id)| id).collect(),
            instances: instances
                .iter()
                .map(|i| DryRunInstance {
                    id: i.id.clone(),
                    tasks: i.dag.node_count(),
                    edges: i.dag.edge_count(),
                })
                .collect(),
            models: m_count,
            cells: instances.len() * m_count * e_count,
            references: instances.len() * m_count,
            shard_cells,
        })
    }

    /// Execute one shard of the campaign in this process (the worker
    /// half of a distributed run): events go to the configured
    /// observers — a worker process attaches a
    /// [`WireObserver`](crate::WireObserver) on stdout — and rows
    /// cross back to the coordinator as events, so sinks are not fed.
    pub fn run_shard(
        mut self,
        shard: usize,
        shard_count: usize,
    ) -> Result<ShardOutcome, EngineError> {
        let observers = Mutex::new(std::mem::take(&mut self.observers));
        let result = execute_shard(
            &self.spec,
            &self.registry,
            &self.cache,
            &self.telemetry,
            &self.cancel,
            shard,
            shard_count,
            &|ev| {
                let mut observers = observers.lock().expect("observer list");
                for o in observers.iter_mut() {
                    o.on_event(&ev)?;
                }
                Ok(())
            },
        );
        for o in observers.into_inner().expect("observer list").iter_mut() {
            let _ = o.on_finish();
        }
        result
    }

    /// The engine room shared by every full-campaign execution path:
    /// runs the backend, merges its event stream (dedup, re-sequencing,
    /// completeness), feeds observers and sinks, and folds shard
    /// telemetry snapshots into the campaign's collector.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_core(
        spec: &SweepSpec,
        registry: &EstimatorRegistry,
        cache: &ResultCache,
        backend: &dyn ExecBackend,
        observers: &mut [Box<dyn CampaignObserver>],
        sinks: &mut [&mut dyn ResultSink],
        telemetry: &Telemetry,
        cancel: &CancelToken,
    ) -> Result<SweepOutcome, EngineError> {
        let start = Instant::now();
        spec.validate()?;
        let expected = backend.worker_count();
        if expected == 0 {
            return Err(EngineError::spec("backend needs at least one worker"));
        }
        for sink in sinks.iter_mut() {
            sink.begin()
                .map_err(|e| EngineError::sink(None, format!("sink begin: {e}")))?;
        }
        let mut merge = Merge::new(true);
        let (tx, rx) = mpsc::channel::<(usize, CampaignEvent)>();
        let ctx = BackendContext {
            spec,
            registry,
            cache,
            telemetry,
            cancel,
        };
        let backend_result = std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                let deliver = move |source: usize, ev: CampaignEvent| {
                    tx.send((source, ev))
                        .map_err(|_| EngineError::worker(None, "event channel closed"))
                };
                backend.execute(&ctx, &deliver)
            });
            loop {
                // Only measure channel blocking when telemetry is on:
                // the disabled path keeps the bare recv, clock-free.
                let received = if telemetry.is_enabled() {
                    let t0 = Instant::now();
                    let r = rx.recv();
                    telemetry.record_span_duration("queue_wait", t0.elapsed());
                    r
                } else {
                    rx.recv()
                };
                let Ok((source, event)) = received else {
                    break;
                };
                // After the first error (a sink or observer failure)
                // the campaign's fate is sealed: stop dispatching to
                // observers and sinks and just drain the channel. The
                // backend cannot be cancelled mid-cell — completed
                // cells still land in the shared cache — but no
                // further downstream work happens.
                if merge.has_error() {
                    continue;
                }
                // A retried shard re-delivers events its crashed
                // attempt already sent; drop them before observers so
                // progress counters and custom monitors stay exact.
                if merge.is_duplicate(source, &event) {
                    continue;
                }
                // Fold each shard's aggregate into the campaign's
                // collector — the same path whether the snapshot came
                // from an in-process shard or over a worker pipe.
                if let CampaignEvent::Telemetry { snapshot, .. } = &event {
                    telemetry.merge(snapshot);
                }
                for obs in observers.iter_mut() {
                    if let Err(e) = obs.on_event(&event) {
                        merge.record_error(e);
                    }
                }
                merge.observe(source, event, sinks);
            }
            handle.join().expect("backend thread panicked")
        });
        for obs in observers.iter_mut() {
            if let Err(e) = obs.on_finish() {
                merge.record_error(e);
            }
        }
        backend_result?;
        let merged = merge.finalize(expected)?;
        let summary = summarize(&merged.rows);
        {
            let _flush = telemetry.span("sink_flush");
            for sink in sinks.iter_mut() {
                sink.summary(&summary)
                    .and_then(|()| sink.finish())
                    .map_err(|e| EngineError::sink(None, format!("sink summary: {e}")))?;
            }
        }
        let wall = start.elapsed();
        telemetry.record_span_duration("campaign", wall);
        Ok(SweepOutcome {
            cells: merged.cells,
            // Worker hellos count a reference scenario once per shard
            // that needs it; report the deduplicated campaign total
            // (every scenario has exactly one cell per estimator, so
            // the unique count falls out of the merged cell count).
            references: merged.cells / spec.estimators.len().max(1),
            cache_hits: merged.cache_hits,
            cache_misses: merged.cache_misses,
            cells_computed: merged.cells_computed,
            cells_memory_hits: merged.cells_memory_hits,
            cells_disk_hits: merged.cells_disk_hits,
            wall,
            rows: merged.rows,
            summary,
        })
    }
}

/// Configures a [`Campaign`] (see [`Campaign::builder`]).
pub struct CampaignBuilder {
    spec: SweepSpec,
    registry: EstimatorRegistry,
    cache: Arc<ResultCache>,
    backend: Box<dyn ExecBackend>,
    sinks: Vec<Box<dyn ResultSink>>,
    observers: Vec<Box<dyn CampaignObserver>>,
    jobs: Option<usize>,
    telemetry: Telemetry,
    cancel: CancelToken,
}

impl CampaignBuilder {
    /// Replace the estimator registry (default: the standard one).
    pub fn registry(mut self, registry: EstimatorRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Use this result cache (an owned [`ResultCache`] or a shared
    /// `Arc<ResultCache>` — pass a clone of the `Arc` to keep a handle
    /// for post-run maintenance like [`ResultCache::gc_disk`]).
    pub fn cache(mut self, cache: impl Into<Arc<ResultCache>>) -> Self {
        self.cache = cache.into();
        self
    }

    /// Select the execution backend (default: [`InProcess`]).
    pub fn backend(mut self, backend: impl ExecBackend + 'static) -> Self {
        self.backend = Box::new(backend);
        self
    }

    /// Cap the campaign's worker threads (overrides the spec's `jobs`;
    /// results are identical at any setting).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Attach an ordered row consumer (every sink receives every row,
    /// in deterministic cell order).
    pub fn sink(mut self, sink: impl ResultSink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Subscribe a completion-order event observer.
    pub fn observer(mut self, observer: impl CampaignObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Render progress (counters, throughput, cache-hit rate, ETA) to
    /// stderr in the given mode — shorthand for subscribing a
    /// [`ProgressReporter`]. [`ProgressMode::Live`] falls back to
    /// plain line output when stderr is not a terminal (see
    /// [`ProgressReporter::stderr`]).
    pub fn progress(self, mode: ProgressMode) -> Self {
        self.observer(ProgressReporter::stderr(mode))
    }

    /// Attach a telemetry collector (default:
    /// [`Telemetry::disabled`]). Pass a clone of an enabled handle and
    /// keep the original: after [`Campaign::run`] it holds the merged
    /// spans and counters of every shard, ready for
    /// [`Telemetry::report`]. With an enabled collector,
    /// [`MultiProcess`] workers are spawned with `--telemetry` and
    /// their snapshots merge in over the wire.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Share a cooperative stop flag with the campaign (default: a
    /// private token nobody cancels). Keep a clone and call
    /// [`CancelToken::cancel`] from another thread to stop the run
    /// between cells; the run then fails with
    /// [`EngineError::Cancelled`]. Finished cells are already in the
    /// cache, so re-running the same spec over the same cache resumes
    /// from where the cancelled run stopped.
    pub fn cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Validate the configuration and produce the campaign handle.
    /// Spec problems (empty axes, bad estimator knobs, `jobs = 0`)
    /// fail here, before any filesystem or process work.
    pub fn build(self) -> Result<Campaign, EngineError> {
        let CampaignBuilder {
            mut spec,
            registry,
            cache,
            backend,
            sinks,
            observers,
            jobs,
            telemetry,
            cancel,
        } = self;
        if let Some(jobs) = jobs {
            spec.jobs = Some(jobs);
        }
        spec.validate()?;
        for est in &spec.estimators {
            registry.build(est, 0)?; // constructors are cheap; reject bad knobs now
        }
        if backend.worker_count() == 0 {
            return Err(EngineError::spec("backend needs at least one worker"));
        }
        Ok(Campaign {
            spec,
            registry,
            cache,
            backend,
            sinks,
            observers,
            telemetry,
            cancel,
        })
    }
}
