//! The [`Campaign`] facade: one typed, embeddable entry point for the
//! whole engine.
//!
//! A campaign is the paper's evaluation unit — a grid of
//! (DAG × failure model × estimator) cells compared against Monte-Carlo
//! references — and this module gives it a single lifecycle:
//!
//! ```text
//! Campaign::builder(spec)      // typed SweepSpec, typed EstimatorSpecs
//!     .cache(...)              // shared content-addressed ResultCache
//!     .sink(...)               // ordered row consumers (CSV/JSONL/…)
//!     .observer(...)           // completion-order event subscribers
//!     .backend(...)            // how cells execute (see ExecBackend)
//!     .build()?                // validates everything up front
//!     .run()?                  // or .resume_report() / .dry_run()
//! ```
//!
//! Execution is **pull-scheduled**: the coordinator expands the spec
//! into a [`CampaignPlan`], loads its [`WorkLease`] batches into a
//! [`LeaseQueue`], and the backend's workers drain batches as they
//! finish — a slow (or remote, or heterogeneous) worker simply wins
//! fewer leases instead of dragging a statically-partitioned tail.
//! Every backend reports work through the same [`CampaignEvent`]
//! stream; the campaign core merges that stream once — re-sequencing
//! rows for the sinks, feeding observers, enforcing completeness — so
//! output bytes are identical no matter which backend produced the
//! events or how the leases interleaved.

use crate::cache::{cell_key, ResultCache};
use crate::cancel::CancelToken;
use crate::error::EngineError;
use crate::lease::{
    decode_lease, encode_lease, CampaignPlan, LeaseExecutor, LeasePoll, LeaseQueue, WorkLease,
};
use crate::observer::CampaignObserver;
use crate::progress::{ProgressMode, ProgressReporter};
use crate::protocol::{decode_event, CampaignEvent};
use crate::registry::EstimatorRegistry;
use crate::runner::{
    apply_jobs_cap, derive_seed, expand, resume_report_impl, Expansion, ResumeReport, SweepOutcome,
};
use crate::shard::{execute_shard, shard_of, ShardOutcome};
use crate::sink::{summarize, Reorderer, ResultSink, SweepRow};
use crate::spec::SweepSpec;
use crate::telemetry::Telemetry;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use stochdag_dag::structural_hash;

/// Event source tag of the coordinator itself (the [`Plan`] event);
/// backends tag events with their worker slot instead.
///
/// [`Plan`]: CampaignEvent::Plan
pub(crate) const COORDINATOR_SOURCE: usize = usize::MAX;

/// What a backend needs to execute a campaign: the validated spec, the
/// shared estimator registry and result cache, and the expanded plan.
pub struct BackendContext<'a> {
    /// The validated campaign spec.
    pub spec: &'a SweepSpec,
    /// Estimator factory.
    pub registry: &'a EstimatorRegistry,
    /// Shared result cache (multi-process backends hand its
    /// [`ResultCache::disk_dir`] to worker processes).
    pub cache: &'a ResultCache,
    /// The campaign's telemetry collector (disabled by default).
    /// Backends pass it to lease executors; process-spawning backends
    /// additionally check [`Telemetry::is_enabled`] to decide whether
    /// workers should collect and report snapshots.
    pub telemetry: &'a Telemetry,
    /// Cooperative stop flag. In-process backends hand it to the lease
    /// executor (checked between cells); process-spawning backends
    /// should poll it at their own convenient boundaries (e.g. between
    /// lease grants) and stop early with [`EngineError::cancelled`]
    /// when set.
    pub cancel: &'a CancelToken,
    /// The expanded campaign plan the lease queue was built from —
    /// what a [`LeaseExecutor`] executes against.
    pub plan: &'a CampaignPlan,
}

/// Event delivery callback handed to backends: `(source slot, event)`.
/// Must be callable from any backend thread.
pub type Deliver<'a> = dyn Fn(usize, CampaignEvent) -> Result<(), EngineError> + Sync + 'a;

/// An execution strategy for a campaign's cells (**v2, work-leasing**).
///
/// This trait is the **extension seam of the engine**: a backend owns
/// *where and how* cells run. The coordinator owns the schedule — a
/// [`LeaseQueue`] of [`WorkLease`] cell batches — and the backend's
/// workers *pull* batches as they finish, so heterogeneous cell costs
/// balance themselves: a worker stuck on an expensive `exact` batch
/// simply wins fewer leases. A batch whose worker crashes is re-queued
/// ([`LeaseQueue::requeue`], bounded per lease) for any surviving
/// worker. Everything a backend does is reported through the one
/// [`CampaignEvent`] vocabulary, and the campaign core merges events,
/// re-orders rows, and checks completeness identically for every
/// implementation — which is what makes backend outputs byte-identical
/// regardless of lease interleaving.
///
/// Shipped backends:
///
/// * [`InProcess`] — worker threads in this process draining the
///   queue through one shared [`LeaseExecutor`].
/// * [`MultiProcess`] — N `sweep-worker` processes on this machine
///   sharing the on-disk cache, leases streamed over stdin pipes.
/// * [`SharedFs`](crate::SharedFs) — remote `sweep-worker` processes
///   on other hosts, coordinated through a shared-filesystem spool
///   directory.
///
/// # Migrating from v1
///
/// The v1 trait (static "run shard *i* of *n*" partitioning) is
/// re-published as [`ExecBackendV1`] for a deprecation window; wrap an
/// existing implementation in [`V1Backend`] to keep using it.
///
/// | v1 ([`ExecBackendV1`]) | v2 ([`ExecBackend`]) |
/// |---|---|
/// | `worker_count()` fixes the shard partition | [`workers`](ExecBackend::workers) is a slot-count hint (default 1); the partition is the coordinator's lease queue |
/// | `execute(ctx, deliver)` runs every shard itself | [`execute`](ExecBackend::execute) pulls [`WorkLease`] batches from the [`LeaseQueue`] until it drains |
/// | each shard announces totals via `Hello { cells, references }` | the coordinator announces exact totals once via [`Plan`](CampaignEvent::Plan); `Hello` carries `version: Some(2)` and the `jobs` thread-cap handshake |
/// | a crashed worker's whole shard is retried once | a crashed worker's leases are re-queued individually ([`LeaseQueue::requeue`], two grants per lease) |
/// | cache totals on `Done { hits, misses }` | cache totals per batch on [`LeaseDone`](CampaignEvent::LeaseDone), deduplicated by `lease_id`; v2 `Done` carries zeros |
pub trait ExecBackend: Send + Sync {
    /// Human-readable backend name (diagnostics, dry runs).
    fn name(&self) -> String;

    /// How many worker slots the backend drives (a sizing hint for
    /// dry-run reports and resume reports — *not* a partition count;
    /// the lease queue is the only work assignment).
    fn workers(&self) -> usize {
        1
    }

    /// Drain `leases`, delivering each event (tagged with its source
    /// worker slot) as it happens. Grant batches with
    /// [`LeaseQueue::next`]/[`LeaseQueue::poll_next`], retire them with
    /// [`LeaseQueue::complete`] when their `LeaseDone` arrives, and
    /// [`LeaseQueue::requeue`] the batches of a crashed worker.
    fn execute(
        &self,
        ctx: &BackendContext<'_>,
        leases: &LeaseQueue,
        deliver: &Deliver<'_>,
    ) -> Result<(), EngineError>;
}

/// The **v1** execution-backend trait (static shard partitioning),
/// kept for a deprecation window so external implementations survive
/// the v2 redesign: change the `impl ExecBackend for …` line to
/// `impl ExecBackendV1 for …` and pass the backend through
/// [`V1Backend`]. See the [`ExecBackend`] migration table; this trait
/// will be removed once shipped consumers have migrated.
pub trait ExecBackendV1: Send + Sync {
    /// Human-readable backend name (diagnostics, dry runs).
    fn name(&self) -> String;

    /// How many shards the campaign's cells are partitioned into.
    fn worker_count(&self) -> usize;

    /// Execute every cell, delivering each event (tagged with its
    /// source shard) as it happens. Must deliver a `Hello` and a
    /// `Done` for every shard in `0..worker_count()`.
    fn execute(&self, ctx: &BackendContext<'_>, deliver: &Deliver<'_>) -> Result<(), EngineError>;
}

/// Adapter running a v1 backend ([`ExecBackendV1`]) under the v2
/// campaign core: the wrapped backend executes every cell itself
/// (static shards, v1 events), so the adapter retires the entire lease
/// queue up front and lets the planned-mode merge reconcile the v1
/// event stream — cells dedup by global index, totals come from the
/// coordinator's `Plan`.
pub struct V1Backend<B: ExecBackendV1>(pub B);

impl<B: ExecBackendV1> ExecBackend for V1Backend<B> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn workers(&self) -> usize {
        self.0.worker_count()
    }

    fn execute(
        &self,
        ctx: &BackendContext<'_>,
        leases: &LeaseQueue,
        deliver: &Deliver<'_>,
    ) -> Result<(), EngineError> {
        // The v1 backend owns its own partition and retry story; the
        // queue only exists so the core sees the campaign as leased.
        while let Some(lease) = leases.next() {
            leases.complete(lease.lease_id);
        }
        self.0.execute(ctx, deliver)
    }
}

/// Execute the campaign on worker threads in this process: up to
/// `--jobs` (default: every core) threads drain the lease queue
/// through one shared [`LeaseExecutor`], so each DAG instance freezes
/// once and each (instance × estimator) group prepares once.
pub struct InProcess;

impl ExecBackend for InProcess {
    fn name(&self) -> String {
        "in-process".into()
    }

    fn execute(
        &self,
        ctx: &BackendContext<'_>,
        leases: &LeaseQueue,
        deliver: &Deliver<'_>,
    ) -> Result<(), EngineError> {
        let start = Instant::now();
        if ctx.cancel.is_cancelled() {
            return Err(EngineError::cancelled());
        }
        let _jobs_cap = apply_jobs_cap(ctx.spec.jobs)?;
        ctx.cache.reset_counters();
        let executor = LeaseExecutor::new(ctx);
        deliver(
            0,
            CampaignEvent::Hello {
                shard: 0,
                shard_count: 1,
                cells: ctx.plan.cells(),
                references: ctx.plan.references(),
                version: Some(2),
                jobs: ctx.spec.jobs,
            },
        )?;
        let threads = rayon::current_num_threads().min(leases.total()).max(1);
        let first_error: Mutex<Option<EngineError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let executor = &executor;
                let first_error = &first_error;
                scope.spawn(move || {
                    while first_error.lock().expect("first error slot").is_none() {
                        let Some(lease) = leases.next() else { return };
                        match executor.run(&lease, &|ev| deliver(0, ev)) {
                            Ok(()) => leases.complete(lease.lease_id),
                            Err(e) => {
                                // In-process failures (cancellation, a
                                // sink/observer error surfaced through
                                // emit) are fatal — there is no crashed
                                // process to retry around.
                                first_error
                                    .lock()
                                    .expect("first error slot")
                                    .get_or_insert(e);
                                leases.close();
                                return;
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = first_error.into_inner().expect("first error slot") {
            return Err(e);
        }
        let tel = executor.telemetry();
        if tel.is_enabled() {
            tel.record_span_duration("worker_shard", start.elapsed());
            deliver(
                0,
                CampaignEvent::Telemetry {
                    shard: 0,
                    snapshot: tel.snapshot(),
                },
            )?;
        }
        // v2 `Done` carries zero cache totals: the per-batch tallies
        // already arrived on `LeaseDone` events and would double-count.
        deliver(
            0,
            CampaignEvent::Done {
                hits: 0,
                misses: 0,
                wall_s: start.elapsed().as_secs_f64(),
            },
        )
    }
}

/// How one worker slot's session ended.
enum SlotEnd {
    /// The lease queue drained and the worker exited cleanly.
    Drained,
    /// The worker died (crash, torn stream, reported error); `lost`
    /// holds the leases it was granted but never completed.
    Failed { why: String, lost: Vec<WorkLease> },
}

/// One read off a worker's event stream.
enum EventRead {
    Event(CampaignEvent),
    Failed(String),
    Eof,
}

/// Distribute the campaign over N worker **processes** on this machine.
///
/// Each worker runs `sweep-worker --leases`: the coordinator streams
/// [`WorkLease`] lines over the worker's stdin (a pipeline window of
/// `--jobs` batches keeps the worker's threads saturated), the worker
/// executes them cache-first against the shared on-disk cache and
/// streams line-delimited JSON [`CampaignEvent`]s back over its stdout
/// pipe. A worker that dies — non-zero exit, torn or corrupt stream,
/// reported error — is **re-spawned once** and its unfinished leases
/// are re-queued for any surviving worker (each lease is granted at
/// most twice); the retry runs cache-first, so cells the crashed
/// worker already finished are served from the shared cache and only
/// the remainder recomputes. Events the failed attempt already
/// delivered are deduplicated by the campaign core (they are
/// deterministic, so the retry's copies are identical).
///
/// The worker-thread cap is a `--jobs` handshake: an explicit spec
/// `jobs` is passed through per worker; otherwise this machine's cores
/// are split across the local worker processes. (Workers never derive
/// `cores / N` themselves — they don't know the peer count, and on a
/// remote host the coordinator's core count is meaningless.)
///
/// Workers default to `current_exe()` + `sweep-worker` (correct when
/// the embedding binary is the `stochdag` CLI); embedders point
/// [`MultiProcess::launcher`] at a `stochdag` binary instead.
pub struct MultiProcess {
    workers: usize,
    launcher: Option<(PathBuf, Vec<String>)>,
}

impl MultiProcess {
    /// Backend spawning `workers` processes.
    pub fn new(workers: usize) -> MultiProcess {
        MultiProcess {
            workers,
            launcher: None,
        }
    }

    /// Use `program args…` as the worker command instead of
    /// `current_exe() sweep-worker`. The backend appends
    /// `--spec-json PATH --leases --worker I --jobs J` plus
    /// `--cache DIR` / `--no-cache`, and `--telemetry` when the
    /// campaign runs with an enabled [`Telemetry`] collector.
    pub fn launcher(mut self, program: impl Into<PathBuf>, args: Vec<String>) -> MultiProcess {
        self.launcher = Some((program.into(), args));
        self
    }

    fn spawn_worker(
        &self,
        ctx: &BackendContext<'_>,
        spec_path: &std::path::Path,
        slot: usize,
        jobs: usize,
    ) -> Result<Child, EngineError> {
        let (program, base_args) = match &self.launcher {
            Some((p, a)) => (p.clone(), a.clone()),
            None => (
                std::env::current_exe().map_err(|e| EngineError::io("locating own binary", e))?,
                vec!["sweep-worker".to_string()],
            ),
        };
        let mut cmd = Command::new(program);
        cmd.args(base_args)
            .arg("--spec-json")
            .arg(spec_path)
            .arg("--leases")
            .arg("--worker")
            .arg(slot.to_string())
            .arg("--jobs")
            .arg(jobs.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        match ctx.cache.disk_dir() {
            Some(dir) => {
                cmd.arg("--cache").arg(dir);
            }
            None => {
                cmd.arg("--no-cache");
            }
        }
        if ctx.telemetry.is_enabled() {
            cmd.arg("--telemetry");
        }
        ctx.telemetry.count("worker_spawns", 1);
        cmd.spawn()
            .map_err(|e| EngineError::worker(slot, format!("spawning sweep worker: {e}")))
    }

    /// Read the next event off a worker's stream. A worker `Error`
    /// event is tallied by kind and surfaced as a failure (not
    /// delivered), so a re-queued lease does not abort the merge.
    fn next_event(
        lines: &mut std::io::Lines<BufReader<ChildStdout>>,
        telemetry: &Telemetry,
    ) -> EventRead {
        match lines.next() {
            None => EventRead::Eof,
            Some(Err(_)) => EventRead::Failed("stream broke mid-read".into()),
            Some(Ok(line)) => match decode_event(&line) {
                Err(e) => EventRead::Failed(e),
                Ok(CampaignEvent::Error { message, kind }) => {
                    // Tally every worker failure by kind — including
                    // attempts whose leases a re-queue later completes,
                    // which never surface as a campaign error.
                    let kind = kind.as_deref().unwrap_or("unknown");
                    telemetry.count(&format!("errors_{kind}"), 1);
                    EventRead::Failed(message)
                }
                Ok(ev) => EventRead::Event(ev),
            },
        }
    }

    /// Drive one worker process: feed it leases over stdin (keeping a
    /// window of `jobs` in flight), pump its event stream, retire
    /// completed leases. Returns how the session ended; `Err` is
    /// reserved for campaign-fatal conditions (cancellation, a dead
    /// event channel).
    fn pump_worker(
        slot: usize,
        jobs: usize,
        child: &mut Child,
        ctx: &BackendContext<'_>,
        leases: &LeaseQueue,
        deliver: &Deliver<'_>,
    ) -> Result<SlotEnd, EngineError> {
        let mut stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let mut held: HashMap<usize, WorkLease> = HashMap::new();
        fn lost(held: &mut HashMap<usize, WorkLease>) -> Vec<WorkLease> {
            let mut v: Vec<WorkLease> = held.drain().map(|(_, l)| l).collect();
            v.sort_by_key(|l| l.lease_id);
            v
        }
        // Handshake: the worker validates the spec and says hello
        // before the first lease is written.
        match Self::next_event(&mut lines, ctx.telemetry) {
            EventRead::Event(ev @ CampaignEvent::Hello { .. }) => deliver(slot, ev)?,
            EventRead::Event(_) => {
                return Ok(SlotEnd::Failed {
                    why: "protocol violation: first event was not hello".into(),
                    lost: Vec::new(),
                })
            }
            EventRead::Failed(why) => {
                return Ok(SlotEnd::Failed {
                    why,
                    lost: Vec::new(),
                })
            }
            EventRead::Eof => {
                return Ok(SlotEnd::Failed {
                    why: "stream ended before its hello event".into(),
                    lost: Vec::new(),
                })
            }
        }
        loop {
            // Keep a pipeline window of `jobs` leases in flight so the
            // worker's threads never idle waiting on the pipe. When the
            // slot holds nothing, wait on the queue (another slot may
            // crash and re-queue) instead of spinning.
            let mut drained = false;
            while held.len() < jobs {
                let wait = if held.is_empty() {
                    Duration::from_millis(50)
                } else {
                    Duration::ZERO
                };
                match leases.poll_next(wait) {
                    LeasePoll::Ready(lease) => {
                        let line = encode_lease(&lease);
                        held.insert(lease.lease_id, lease);
                        if let Err(e) = writeln!(stdin, "{line}") {
                            return Ok(SlotEnd::Failed {
                                why: format!("writing lease request: {e}"),
                                lost: lost(&mut held),
                            });
                        }
                    }
                    LeasePoll::Pending => break,
                    LeasePoll::Drained => {
                        drained = true;
                        break;
                    }
                }
            }
            if held.is_empty() {
                if drained {
                    break;
                }
                if ctx.cancel.is_cancelled() {
                    return Err(EngineError::cancelled());
                }
                continue;
            }
            match Self::next_event(&mut lines, ctx.telemetry) {
                EventRead::Event(CampaignEvent::LeaseDone {
                    lease_id,
                    cells,
                    hits,
                    misses,
                }) => {
                    held.remove(&lease_id);
                    deliver(
                        slot,
                        CampaignEvent::LeaseDone {
                            lease_id,
                            cells,
                            hits,
                            misses,
                        },
                    )?;
                    leases.complete(lease_id);
                    if ctx.cancel.is_cancelled() {
                        return Err(EngineError::cancelled());
                    }
                }
                EventRead::Event(ev) => deliver(slot, ev)?,
                EventRead::Failed(why) => {
                    return Ok(SlotEnd::Failed {
                        why,
                        lost: lost(&mut held),
                    })
                }
                EventRead::Eof => {
                    return Ok(SlotEnd::Failed {
                        why: "stream ended mid-lease".into(),
                        lost: lost(&mut held),
                    })
                }
            }
        }
        // Queue drained: close the worker's stdin so it exits, then
        // drain its trailing telemetry/done events.
        drop(stdin);
        loop {
            match Self::next_event(&mut lines, ctx.telemetry) {
                EventRead::Event(ev) => deliver(slot, ev)?,
                EventRead::Failed(why) => {
                    return Ok(SlotEnd::Failed {
                        why,
                        lost: Vec::new(),
                    })
                }
                EventRead::Eof => break,
            }
        }
        match child.wait() {
            Ok(status) if status.success() => {}
            // Every lease is completed and merged; a worker that
            // botches its own exit is not worth failing the campaign.
            Ok(status) => eprintln!("sweep worker {slot} exited with {status} after draining"),
            Err(e) => eprintln!("sweep worker {slot}: wait failed: {e}"),
        }
        Ok(SlotEnd::Drained)
    }

    /// Run one worker slot to queue drain, re-spawning once on worker
    /// death. Lease-level retries are additionally capped by the
    /// queue's per-lease grant budget, whoever retries them.
    fn run_slot(
        &self,
        ctx: &BackendContext<'_>,
        leases: &LeaseQueue,
        deliver: &Deliver<'_>,
        spec_path: &std::path::Path,
        slot: usize,
        jobs: usize,
    ) -> Result<(), EngineError> {
        let mut budget = 1usize;
        loop {
            let mut child = match self.spawn_worker(ctx, spec_path, slot, jobs) {
                Ok(c) => c,
                Err(e) => {
                    // Don't leave peers waiting on leases this slot
                    // will never take.
                    leases.close();
                    return Err(e);
                }
            };
            match Self::pump_worker(slot, jobs, &mut child, ctx, leases, deliver) {
                Ok(SlotEnd::Drained) => return Ok(()),
                Ok(SlotEnd::Failed { why, lost }) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    for lease in &lost {
                        if !leases.requeue(lease.lease_id) {
                            leases.close();
                            return Err(EngineError::worker(
                                slot,
                                format!(
                                    "lease {} failed after {} attempts (last: {why})",
                                    lease.lease_id,
                                    leases.attempts(lease.lease_id)
                                ),
                            ));
                        }
                    }
                    if budget == 0 {
                        // Re-queued leases go to surviving slots; if
                        // every slot retires, execute() reports the
                        // undrained queue.
                        eprintln!("sweep worker {slot}: retry budget exhausted; slot retired");
                        return Ok(());
                    }
                    budget -= 1;
                    ctx.telemetry.count("worker_retries", 1);
                    if lost.is_empty() {
                        eprintln!("sweep worker {slot} failed ({why}); respawning");
                    } else {
                        eprintln!(
                            "sweep worker {slot} failed ({why}); re-queueing {} lease(s)",
                            lost.len()
                        );
                    }
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    leases.close();
                    return Err(e);
                }
            }
        }
    }
}

impl ExecBackend for MultiProcess {
    fn name(&self) -> String {
        format!("multi-process ({} workers)", self.workers)
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn execute(
        &self,
        ctx: &BackendContext<'_>,
        leases: &LeaseQueue,
        deliver: &Deliver<'_>,
    ) -> Result<(), EngineError> {
        if self.workers == 0 {
            return Err(EngineError::spec("worker count must be positive"));
        }
        if ctx.cancel.is_cancelled() {
            return Err(EngineError::cancelled());
        }
        // The --jobs handshake: an explicit spec cap applies per
        // worker; otherwise split this machine's cores across the
        // local worker processes (an uncapped worker would build a
        // full-size thread pool, oversubscribing the host N-fold).
        // Either way results are identical — the thread count cannot
        // change any value.
        let jobs = ctx.spec.jobs.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            (cores / self.workers).max(1)
        });
        // Hand the spec to the workers as a temp JSON file. Named by
        // (pid, campaign counter) — not spec.name, which is
        // user-controlled and may contain path separators. The counter
        // matters for embedders: two concurrent `Campaign::run()`s in
        // one process must not clobber (or delete) each other's spec.
        static SPEC_SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let spec_path = std::env::temp_dir().join(format!(
            "stochdag-spec-{}-{}.json",
            std::process::id(),
            SPEC_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::write(&spec_path, serde::json::to_string(ctx.spec)).map_err(|e| {
            EngineError::io(format!("writing worker spec {}", spec_path.display()), e)
        })?;
        let result = std::thread::scope(|scope| {
            let spec_path = &spec_path;
            let handles: Vec<_> = (0..self.workers)
                .map(|slot| {
                    scope.spawn(move || self.run_slot(ctx, leases, deliver, spec_path, slot, jobs))
                })
                .collect();
            let mut first: Option<EngineError> = None;
            for h in handles {
                if let Err(e) = h.join().expect("worker slot thread panicked") {
                    first.get_or_insert(e);
                }
            }
            match first {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
        let _ = std::fs::remove_file(&spec_path);
        result?;
        if ctx.cancel.is_cancelled() {
            return Err(EngineError::cancelled());
        }
        if !leases.is_drained() {
            return Err(EngineError::worker(
                None,
                "workers exhausted their retry budget before the lease queue drained",
            ));
        }
        Ok(())
    }
}

/// Merges a campaign's event stream: per-source bookkeeping, row
/// re-sequencing into the sinks, first-error capture, and the
/// completeness checks that make backend outputs interchangeable.
///
/// `dedup` mode (the [`Campaign`] core) tolerates duplicate
/// deliveries — what a re-queued lease (or a v1 shard retry) produces
/// — by keeping the first copy of every cell/reference/lease total.
/// Strict mode ([`crate::merge_event_streams`], which replays logged
/// streams with no retry semantics) treats any repeat as a protocol
/// violation.
///
/// A [`Plan`](CampaignEvent::Plan) event switches the merge to
/// **planned** totals (v2): expected cell/reference counts come from
/// the coordinator's plan instead of summing per-shard `Hello`
/// announcements, and per-worker completeness is subsumed by the lease
/// queue (workers under leasing cannot announce their share up front).
pub(crate) struct Merge {
    dedup: bool,
    planned: bool,
    reorder: Reorderer,
    rows: Vec<SweepRow>,
    hellos: usize,
    dones: usize,
    hello_shards: BTreeMap<usize, (usize, usize)>,
    done_shards: BTreeSet<usize>,
    seen_cells: HashSet<usize>,
    seen_scenarios: HashSet<usize>,
    lease_done: BTreeSet<usize>,
    refs_seen: BTreeMap<usize, usize>,
    telemetry_shards: BTreeSet<usize>,
    total_cells: usize,
    total_refs: usize,
    cache_hits: usize,
    cache_misses: usize,
    cells_computed: usize,
    cells_memory_hits: usize,
    cells_disk_hits: usize,
    first_error: Option<EngineError>,
}

/// What [`Merge::finalize`] produces on success: the re-sequenced rows
/// plus the campaign totals, with the cell cache-tier tallies
/// deduplicated by global index (backend-invariant).
pub(crate) struct Merged {
    pub(crate) rows: Vec<SweepRow>,
    pub(crate) cells: usize,
    pub(crate) references: usize,
    pub(crate) cache_hits: usize,
    pub(crate) cache_misses: usize,
    pub(crate) cells_computed: usize,
    pub(crate) cells_memory_hits: usize,
    pub(crate) cells_disk_hits: usize,
}

impl Merge {
    pub(crate) fn new(dedup: bool) -> Merge {
        Merge {
            dedup,
            planned: false,
            reorder: Reorderer::new(),
            rows: Vec::new(),
            hellos: 0,
            dones: 0,
            hello_shards: BTreeMap::new(),
            done_shards: BTreeSet::new(),
            seen_cells: HashSet::new(),
            seen_scenarios: HashSet::new(),
            lease_done: BTreeSet::new(),
            refs_seen: BTreeMap::new(),
            telemetry_shards: BTreeSet::new(),
            total_cells: 0,
            total_refs: 0,
            cache_hits: 0,
            cache_misses: 0,
            cells_computed: 0,
            cells_memory_hits: 0,
            cells_disk_hits: 0,
            first_error: None,
        }
    }

    pub(crate) fn record_error(&mut self, e: EngineError) {
        self.first_error.get_or_insert(e);
    }

    pub(crate) fn has_error(&self) -> bool {
        self.first_error.is_some()
    }

    /// Dedup gate (dedup mode only): returns `true` when this event
    /// re-delivers something already merged — a re-queued lease's
    /// duplicate — so neither observers (progress counters!) nor the
    /// row pipeline see it twice. v2 references carry their global
    /// scenario index and dedup across workers; v1 references carry no
    /// index and are capped at the count the shard's `Hello` announced.
    pub(crate) fn is_duplicate(&mut self, source: usize, event: &CampaignEvent) -> bool {
        if !self.dedup {
            return false;
        }
        match event {
            CampaignEvent::Plan { .. } => self.planned,
            CampaignEvent::Hello { shard, .. } => self.hello_shards.contains_key(shard),
            CampaignEvent::LeaseStart { .. } => false,
            CampaignEvent::Reference {
                scenario: Some(g), ..
            } => !self.seen_scenarios.insert(*g),
            CampaignEvent::Reference { scenario: None, .. } => {
                let cap = self
                    .hello_shards
                    .get(&source)
                    .map_or(usize::MAX, |&(_, refs)| refs);
                let seen = self.refs_seen.entry(source).or_insert(0);
                if *seen >= cap {
                    true
                } else {
                    *seen += 1;
                    false
                }
            }
            CampaignEvent::Cell { index, .. } => self.seen_cells.contains(index),
            CampaignEvent::LeaseDone { lease_id, .. } => self.lease_done.contains(lease_id),
            CampaignEvent::Done { .. } => self.done_shards.contains(&source),
            CampaignEvent::Error { .. } => false,
            // A re-spawned worker re-sends its snapshot; merge each
            // source's telemetry exactly once.
            CampaignEvent::Telemetry { shard, .. } => !self.telemetry_shards.insert(*shard),
            CampaignEvent::Unknown { .. } => false,
        }
    }

    pub(crate) fn observe(
        &mut self,
        source: usize,
        event: CampaignEvent,
        sinks: &mut [&mut dyn ResultSink],
    ) {
        match event {
            CampaignEvent::Plan {
                cells, references, ..
            } => {
                // Authoritative totals from the coordinator's plan (in
                // strict replay mode too: a logged v2 stream opens with
                // the plan it executed).
                self.planned = true;
                self.total_cells = cells;
                self.total_refs = references;
            }
            CampaignEvent::Hello {
                shard,
                cells,
                references,
                ..
            } => {
                self.hellos += 1;
                if self.dedup {
                    // A re-spawned worker re-announces the same slot;
                    // count each slot once.
                    self.hello_shards
                        .entry(shard)
                        .or_insert((cells, references));
                } else if !self.planned {
                    self.total_cells += cells;
                    self.total_refs += references;
                }
            }
            CampaignEvent::Reference { .. } | CampaignEvent::LeaseStart { .. } => {}
            CampaignEvent::Cell {
                index, tier, row, ..
            } => {
                if self.dedup && !self.seen_cells.insert(index) {
                    return;
                }
                match tier {
                    None => self.cells_computed += 1,
                    Some(crate::cache::CacheTier::Memory) => self.cells_memory_hits += 1,
                    Some(crate::cache::CacheTier::Disk) => self.cells_disk_hits += 1,
                }
                let rows = &mut self.rows;
                let mut failed_cell: Option<String> = None;
                let emit_result = self.reorder.push(index, row, |r| {
                    // Collect first: a sink failure aborts the sweep
                    // with an error, but the row set stays complete.
                    rows.push(r.clone());
                    for sink in sinks.iter_mut() {
                        if let Err(e) = sink.row(r) {
                            failed_cell =
                                Some(format!("{} / {} / {}", r.dag, r.model, r.estimator));
                            return Err(e);
                        }
                    }
                    Ok(())
                });
                if let Err(e) = emit_result {
                    self.first_error
                        .get_or_insert(EngineError::sink(failed_cell, format!("sink row: {e}")));
                }
            }
            CampaignEvent::LeaseDone {
                lease_id,
                hits,
                misses,
                ..
            } => {
                // Per-attempt cache totals, deduplicated by lease id:
                // a re-queued lease's totals count once.
                if self.lease_done.insert(lease_id) {
                    self.cache_hits += hits;
                    self.cache_misses += misses;
                }
            }
            CampaignEvent::Done { hits, misses, .. } => {
                self.dones += 1;
                if !self.dedup || self.done_shards.insert(source) {
                    self.cache_hits += hits;
                    self.cache_misses += misses;
                }
            }
            CampaignEvent::Error { message, .. } => {
                self.first_error
                    .get_or_insert(EngineError::worker(source, message));
            }
            // Snapshot merging is the campaign core's business (it
            // owns the Telemetry handle); unknown events are a newer
            // writer's vocabulary — neither affects row bookkeeping.
            CampaignEvent::Telemetry { .. } | CampaignEvent::Unknown { .. } => {}
        }
    }

    /// Final completeness checks; on success returns the re-sequenced
    /// rows and campaign totals.
    pub(crate) fn finalize(mut self, expected_workers: usize) -> Result<Merged, EngineError> {
        if let Some(e) = self.first_error.take() {
            return Err(e);
        }
        // Under leasing the per-worker started/completed census is
        // meaningless (slots may retire early, re-spawn, or never win a
        // lease); completeness is the lease queue draining plus the
        // planned row total below.
        if !self.planned {
            let (started, completed) = if self.dedup {
                (self.hello_shards.len(), self.done_shards.len())
            } else {
                (self.hellos, self.dones)
            };
            if started != expected_workers || completed != expected_workers {
                return Err(EngineError::worker(
                    None,
                    format!(
                        "only {completed} of {expected_workers} worker(s) completed their shard \
                         ({started} started) — a worker crashed or was killed"
                    ),
                ));
            }
        }
        if self.dedup && !self.planned {
            self.total_cells = self.hello_shards.values().map(|&(c, _)| c).sum();
            self.total_refs = self.hello_shards.values().map(|&(_, r)| r).sum();
        }
        if self.reorder.pending() != 0 || self.rows.len() != self.total_cells {
            return Err(EngineError::worker(
                None,
                format!(
                    "merged {} of {} announced cells ({} out-of-sequence) — \
                     shards overlapped or dropped cells",
                    self.rows.len(),
                    self.total_cells,
                    self.reorder.pending()
                ),
            ));
        }
        Ok(Merged {
            rows: self.rows,
            cells: self.total_cells,
            references: self.total_refs,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cells_computed: self.cells_computed,
            cells_memory_hits: self.cells_memory_hits,
            cells_disk_hits: self.cells_disk_hits,
        })
    }
}

/// One concrete DAG instance in a [`DryRun`] report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DryRunInstance {
    /// Instance id (e.g. `"lu:k=8"`).
    pub id: String,
    /// Task count.
    pub tasks: usize,
    /// Edge count.
    pub edges: usize,
}

/// What a campaign *would* execute — the full expansion, without
/// running (or probing) anything. See [`Campaign::dry_run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DryRun {
    /// Campaign name.
    pub name: String,
    /// Backend description.
    pub backend: String,
    /// Canonical estimator ids, in spec order.
    pub estimators: Vec<String>,
    /// Materialized DAG instances, in spec order.
    pub instances: Vec<DryRunInstance>,
    /// Failure models per instance.
    pub models: usize,
    /// Total estimator cells.
    pub cells: usize,
    /// Monte-Carlo reference scenarios.
    pub references: usize,
    /// Cells each shard would own under the *v1 static partition* at
    /// the backend's worker count — the load-balance baseline that
    /// work leasing replaces (leases assign dynamically, so per-worker
    /// loads are not knowable up front).
    pub shard_cells: Vec<usize>,
}

/// A fully-configured campaign: the one handle behind `sweep`-style
/// executions, resume reports, and dry runs (see the
/// crate docs and [`Campaign::builder`]).
pub struct Campaign {
    spec: SweepSpec,
    registry: EstimatorRegistry,
    cache: Arc<ResultCache>,
    backend: Box<dyn ExecBackend>,
    sinks: Vec<Box<dyn ResultSink>>,
    observers: Vec<Box<dyn CampaignObserver>>,
    telemetry: Telemetry,
    cancel: CancelToken,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("spec", &self.spec.name)
            .field("backend", &self.backend.name())
            .field("sinks", &self.sinks.len())
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl Campaign {
    /// Start configuring a campaign for `spec`. Defaults: the standard
    /// registry, an in-memory cache, the [`InProcess`] backend, no
    /// sinks, no observers.
    pub fn builder(spec: SweepSpec) -> CampaignBuilder {
        CampaignBuilder {
            spec,
            registry: EstimatorRegistry::standard(),
            cache: Arc::new(ResultCache::in_memory()),
            backend: Box::new(InProcess),
            sinks: Vec::new(),
            observers: Vec::new(),
            jobs: None,
            telemetry: Telemetry::disabled(),
            cancel: CancelToken::new(),
        }
    }

    /// The campaign's validated spec.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The campaign's result cache (e.g. for a post-run
    /// [`ResultCache::gc_disk`]).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Execute every cell on the configured backend, streaming ordered
    /// rows into the sinks and raw events into the observers.
    pub fn run(self) -> Result<SweepOutcome, EngineError> {
        let Campaign {
            spec,
            registry,
            cache,
            backend,
            mut sinks,
            mut observers,
            telemetry,
            cancel,
        } = self;
        let mut sink_refs: Vec<&mut dyn ResultSink> = sinks
            .iter_mut()
            .map(|b| &mut **b as &mut dyn ResultSink)
            .collect();
        Campaign::run_core(
            &spec,
            &registry,
            &cache,
            backend.as_ref(),
            &mut observers,
            &mut sink_refs,
            &telemetry,
            &cancel,
        )
    }

    /// Diff the spec against the cache — per-estimator and per-shard
    /// hit/miss counts under the configured backend's worker count —
    /// without computing anything or perturbing the cache.
    pub fn resume_report(&self) -> Result<ResumeReport, EngineError> {
        resume_report_impl(
            &self.spec,
            &self.registry,
            &self.cache,
            self.backend.workers(),
        )
    }

    /// Expand the campaign — instances, models, estimators, cell and
    /// reference counts, per-shard cell loads — without executing or
    /// probing anything.
    pub fn dry_run(&self) -> Result<DryRun, EngineError> {
        let Expansion {
            estimator_ids,
            instances,
            models,
            ..
        } = expand(&self.spec, &self.registry)?;
        let shard_count = self.backend.workers().max(1);
        let e_count = estimator_ids.len();
        let hashes: Vec<u128> = instances.iter().map(|i| structural_hash(&i.dag)).collect();
        let mut shard_cells = vec![0usize; shard_count];
        for (i, inst_models) in models.iter().enumerate() {
            for entry in inst_models {
                for (_, canonical) in &estimator_ids {
                    let unit = entry.unit(canonical);
                    let seed = derive_seed(self.spec.seed, hashes[i], entry.model.lambda, &unit);
                    let key = cell_key(hashes[i], entry.model.lambda, &unit, seed);
                    shard_cells[shard_of(&key, shard_count)] += 1;
                }
            }
        }
        let m_count = self.spec.model_count();
        Ok(DryRun {
            name: self.spec.name.clone(),
            backend: self.backend.name(),
            estimators: estimator_ids.into_iter().map(|(_, id)| id).collect(),
            instances: instances
                .iter()
                .map(|i| DryRunInstance {
                    id: i.id.clone(),
                    tasks: i.dag.node_count(),
                    edges: i.dag.edge_count(),
                })
                .collect(),
            models: m_count,
            cells: instances.len() * m_count * e_count,
            references: instances.len() * m_count,
            shard_cells,
        })
    }

    /// Execute one static shard of the campaign in this process (the
    /// worker half of a **v1** distributed run, kept for the
    /// `sweep-worker --shard I --of N` protocol): events go to the
    /// configured observers — a worker process attaches a
    /// [`WireObserver`](crate::WireObserver) on stdout — and rows
    /// cross back to the coordinator as events, so sinks are not fed.
    pub fn run_shard(
        mut self,
        shard: usize,
        shard_count: usize,
    ) -> Result<ShardOutcome, EngineError> {
        let observers = Mutex::new(std::mem::take(&mut self.observers));
        let result = execute_shard(
            &self.spec,
            &self.registry,
            &self.cache,
            &self.telemetry,
            &self.cancel,
            shard,
            shard_count,
            &|ev| {
                let mut observers = observers.lock().expect("observer list");
                for o in observers.iter_mut() {
                    o.on_event(&ev)?;
                }
                Ok(())
            },
        );
        for o in observers.into_inner().expect("observer list").iter_mut() {
            let _ = o.on_finish();
        }
        result
    }

    /// Serve work leases from `input` — the worker half of a **v2**
    /// distributed run (`sweep-worker --leases`, spawned by
    /// [`MultiProcess`] or launched by hand against a
    /// [`SharedFs`](crate::SharedFs) spool's coordinator pipe).
    ///
    /// Decodes one [`WorkLease`] per line, executes each against the
    /// shared cache with `jobs` worker threads (the coordinator's
    /// `--jobs` handshake; defaulting to this machine's cores — a
    /// leased worker never derives `cores / N`, it does not know the
    /// peer count), and reports events to the configured observers — a
    /// worker process attaches a
    /// [`WireObserver`](crate::WireObserver) on stdout. Returns when
    /// `input` reaches EOF (the coordinator closed the pipe after the
    /// queue drained). `worker` tags this worker's `Hello`/`Telemetry`
    /// events.
    pub fn serve_leases(mut self, worker: usize, input: impl BufRead) -> Result<(), EngineError> {
        let start = Instant::now();
        if self.cancel.is_cancelled() {
            return Err(EngineError::cancelled());
        }
        let observers = Mutex::new(std::mem::take(&mut self.observers));
        let emit = |ev: CampaignEvent| -> Result<(), EngineError> {
            let mut observers = observers.lock().expect("observer list");
            for o in observers.iter_mut() {
                o.on_event(&ev)?;
            }
            Ok(())
        };
        let result = (|| {
            let _jobs_cap = apply_jobs_cap(self.spec.jobs)?;
            self.cache.reset_counters();
            let plan = CampaignPlan::new(&self.spec, &self.registry)?;
            let ctx = BackendContext {
                spec: &self.spec,
                registry: &self.registry,
                cache: &self.cache,
                telemetry: &self.telemetry,
                cancel: &self.cancel,
                plan: &plan,
            };
            let executor = LeaseExecutor::new(&ctx);
            emit(CampaignEvent::Hello {
                shard: worker,
                shard_count: 0,
                cells: 0,
                references: 0,
                version: Some(2),
                jobs: self.spec.jobs,
            })?;
            let threads = self
                .spec
                .jobs
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
                .max(1);
            let (tx, rx) = mpsc::channel::<WorkLease>();
            let rx = Mutex::new(rx);
            let first_error: Mutex<Option<EngineError>> = Mutex::new(None);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let rx = &rx;
                    let first_error = &first_error;
                    let executor = &executor;
                    let emit = &emit;
                    scope.spawn(move || loop {
                        let lease = rx.lock().expect("lease receiver").recv();
                        let Ok(lease) = lease else { return };
                        if let Err(e) = executor.run(&lease, emit) {
                            first_error
                                .lock()
                                .expect("first error slot")
                                .get_or_insert(e);
                            return;
                        }
                    });
                }
                // Reader: one lease per line until the coordinator
                // closes the pipe (blank lines are keep-alives).
                for line in input.lines() {
                    if first_error.lock().expect("first error slot").is_some() {
                        break;
                    }
                    let line = match line {
                        Ok(l) => l,
                        Err(e) => {
                            first_error
                                .lock()
                                .expect("first error slot")
                                .get_or_insert(EngineError::io("reading lease stream", e));
                            break;
                        }
                    };
                    if line.trim().is_empty() {
                        continue;
                    }
                    match decode_lease(&line) {
                        Ok(lease) => {
                            if tx.send(lease).is_err() {
                                break;
                            }
                        }
                        Err(e) => {
                            first_error
                                .lock()
                                .expect("first error slot")
                                .get_or_insert(EngineError::worker(worker, e));
                            break;
                        }
                    }
                }
                drop(tx);
            });
            if let Some(e) = first_error.into_inner().expect("first error slot") {
                return Err(e);
            }
            let tel = executor.telemetry();
            if tel.is_enabled() {
                tel.record_span_duration("worker_shard", start.elapsed());
                emit(CampaignEvent::Telemetry {
                    shard: worker,
                    snapshot: tel.snapshot(),
                })?;
            }
            // Zero cache totals by design: per-batch tallies already
            // went out on LeaseDone events.
            emit(CampaignEvent::Done {
                hits: 0,
                misses: 0,
                wall_s: start.elapsed().as_secs_f64(),
            })
        })();
        for o in observers.into_inner().expect("observer list").iter_mut() {
            let _ = o.on_finish();
        }
        result
    }

    /// The engine room shared by every full-campaign execution path:
    /// plans the campaign, announces the plan, runs the backend over
    /// the lease queue, merges its event stream (dedup, re-sequencing,
    /// completeness), feeds observers and sinks, and folds worker
    /// telemetry snapshots into the campaign's collector.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_core(
        spec: &SweepSpec,
        registry: &EstimatorRegistry,
        cache: &ResultCache,
        backend: &dyn ExecBackend,
        observers: &mut [Box<dyn CampaignObserver>],
        sinks: &mut [&mut dyn ResultSink],
        telemetry: &Telemetry,
        cancel: &CancelToken,
    ) -> Result<SweepOutcome, EngineError> {
        let start = Instant::now();
        spec.validate()?;
        let workers = backend.workers();
        if workers == 0 {
            return Err(EngineError::spec("backend needs at least one worker"));
        }
        let plan = CampaignPlan::new(spec, registry)?;
        let leases = LeaseQueue::new(plan.leases().to_vec());
        for sink in sinks.iter_mut() {
            sink.begin()
                .map_err(|e| EngineError::sink(None, format!("sink begin: {e}")))?;
        }
        let mut merge = Merge::new(true);
        // Bounded to one in-flight event: backends run at most two
        // events ahead of the observers, so an observer that flips the
        // campaign's [`CancelToken`] (the seam the service's `cancel`
        // request is built on) is guaranteed visible to the executor
        // before the next lease starts. Cell computation dominates the
        // per-event handoff, so throughput is unaffected.
        let (tx, rx) = mpsc::sync_channel::<(usize, CampaignEvent)>(1);
        // The coordinator announces the authoritative totals before
        // any worker starts — under leasing no worker can (it does not
        // know how many leases it will win). The one buffered slot
        // makes this pre-loop send safe.
        tx.send((
            COORDINATOR_SOURCE,
            CampaignEvent::Plan {
                cells: plan.cells(),
                references: plan.references(),
                leases: leases.total(),
            },
        ))
        .expect("plan receiver alive");
        let ctx = BackendContext {
            spec,
            registry,
            cache,
            telemetry,
            cancel,
            plan: &plan,
        };
        let backend_result = std::thread::scope(|scope| {
            let ctx = &ctx;
            let leases = &leases;
            let handle = scope.spawn(move || {
                let deliver = move |source: usize, ev: CampaignEvent| {
                    tx.send((source, ev))
                        .map_err(|_| EngineError::worker(None, "event channel closed"))
                };
                backend.execute(ctx, leases, &deliver)
            });
            loop {
                // Only measure channel blocking when telemetry is on:
                // the disabled path keeps the bare recv, clock-free.
                let received = if telemetry.is_enabled() {
                    let t0 = Instant::now();
                    let r = rx.recv();
                    telemetry.record_span_duration("queue_wait", t0.elapsed());
                    r
                } else {
                    rx.recv()
                };
                let Ok((source, event)) = received else {
                    break;
                };
                // After the first error (a sink or observer failure)
                // the campaign's fate is sealed: stop dispatching to
                // observers and sinks and just drain the channel. The
                // backend cannot be cancelled mid-cell — completed
                // cells still land in the shared cache — but no
                // further downstream work happens.
                if merge.has_error() {
                    continue;
                }
                // A re-queued lease re-delivers events its crashed
                // attempt already sent; drop them before observers so
                // progress counters and custom monitors stay exact.
                if merge.is_duplicate(source, &event) {
                    continue;
                }
                // Fold each worker's aggregate into the campaign's
                // collector — the same path whether the snapshot came
                // from an in-process session or over a worker pipe.
                if let CampaignEvent::Telemetry { snapshot, .. } = &event {
                    telemetry.merge(snapshot);
                }
                for obs in observers.iter_mut() {
                    if let Err(e) = obs.on_event(&event) {
                        merge.record_error(e);
                    }
                }
                merge.observe(source, event, sinks);
            }
            handle.join().expect("backend thread panicked")
        });
        for obs in observers.iter_mut() {
            if let Err(e) = obs.on_finish() {
                merge.record_error(e);
            }
        }
        backend_result?;
        let merged = merge.finalize(workers)?;
        let summary = summarize(&merged.rows);
        {
            let _flush = telemetry.span("sink_flush");
            for sink in sinks.iter_mut() {
                sink.summary(&summary)
                    .and_then(|()| sink.finish())
                    .map_err(|e| EngineError::sink(None, format!("sink summary: {e}")))?;
            }
        }
        let wall = start.elapsed();
        telemetry.record_span_duration("campaign", wall);
        Ok(SweepOutcome {
            cells: merged.cells,
            // Exact from the coordinator's plan (one reference
            // scenario per instance × model, however many workers
            // probed it).
            references: merged.references,
            cache_hits: merged.cache_hits,
            cache_misses: merged.cache_misses,
            cells_computed: merged.cells_computed,
            cells_memory_hits: merged.cells_memory_hits,
            cells_disk_hits: merged.cells_disk_hits,
            wall,
            rows: merged.rows,
            summary,
        })
    }
}

/// Configures a [`Campaign`] (see [`Campaign::builder`]).
pub struct CampaignBuilder {
    spec: SweepSpec,
    registry: EstimatorRegistry,
    cache: Arc<ResultCache>,
    backend: Box<dyn ExecBackend>,
    sinks: Vec<Box<dyn ResultSink>>,
    observers: Vec<Box<dyn CampaignObserver>>,
    jobs: Option<usize>,
    telemetry: Telemetry,
    cancel: CancelToken,
}

impl CampaignBuilder {
    /// Replace the estimator registry (default: the standard one).
    pub fn registry(mut self, registry: EstimatorRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Use this result cache (an owned [`ResultCache`] or a shared
    /// `Arc<ResultCache>` — pass a clone of the `Arc` to keep a handle
    /// for post-run maintenance like [`ResultCache::gc_disk`]).
    pub fn cache(mut self, cache: impl Into<Arc<ResultCache>>) -> Self {
        self.cache = cache.into();
        self
    }

    /// Select the execution backend (default: [`InProcess`]). A v1
    /// implementation goes through the [`V1Backend`] adapter:
    /// `.backend(V1Backend(my_v1_backend))`.
    pub fn backend(mut self, backend: impl ExecBackend + 'static) -> Self {
        self.backend = Box::new(backend);
        self
    }

    /// Cap the campaign's worker threads (overrides the spec's `jobs`;
    /// results are identical at any setting).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Attach an ordered row consumer (every sink receives every row,
    /// in deterministic cell order).
    pub fn sink(mut self, sink: impl ResultSink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Subscribe a completion-order event observer.
    pub fn observer(mut self, observer: impl CampaignObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Render progress (counters, throughput, cache-hit rate, ETA) to
    /// stderr in the given mode — shorthand for subscribing a
    /// [`ProgressReporter`]. [`ProgressMode::Live`] falls back to
    /// plain line output when stderr is not a terminal (see
    /// [`ProgressReporter::stderr`]).
    pub fn progress(self, mode: ProgressMode) -> Self {
        self.observer(ProgressReporter::stderr(mode))
    }

    /// Attach a telemetry collector (default:
    /// [`Telemetry::disabled`]). Pass a clone of an enabled handle and
    /// keep the original: after [`Campaign::run`] it holds the merged
    /// spans and counters of every worker, ready for
    /// [`Telemetry::report`]. With an enabled collector,
    /// [`MultiProcess`] workers are spawned with `--telemetry` and
    /// their snapshots merge in over the wire.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Share a cooperative stop flag with the campaign (default: a
    /// private token nobody cancels). Keep a clone and call
    /// [`CancelToken::cancel`] from another thread to stop the run
    /// between cells; the run then fails with
    /// [`EngineError::Cancelled`]. Finished cells are already in the
    /// cache, so re-running the same spec over the same cache resumes
    /// from where the cancelled run stopped.
    pub fn cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Validate the configuration and produce the campaign handle.
    /// Spec problems (empty axes, bad estimator knobs, `jobs = 0`)
    /// fail here, before any filesystem or process work.
    pub fn build(self) -> Result<Campaign, EngineError> {
        let CampaignBuilder {
            mut spec,
            registry,
            cache,
            backend,
            sinks,
            observers,
            jobs,
            telemetry,
            cancel,
        } = self;
        if let Some(jobs) = jobs {
            spec.jobs = Some(jobs);
        }
        spec.validate()?;
        for est in &spec.estimators {
            registry.build(est, 0)?; // constructors are cheap; reject bad knobs now
        }
        if backend.workers() == 0 {
            return Err(EngineError::spec("backend needs at least one worker"));
        }
        Ok(Campaign {
            spec,
            registry,
            cache,
            backend,
            sinks,
            observers,
            telemetry,
            cancel,
        })
    }
}
