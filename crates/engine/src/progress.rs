//! Live campaign progress, fed from the worker event stream.
//!
//! The coordinator owns the only terminal, so progress is rendered
//! coordinator-side from the same [`CampaignEvent`]s it merges anyway:
//! per-cell counters, throughput (cells/sec), cache-hit rate, and an
//! ETA extrapolated from the observed rate. Three render modes keep CI
//! logs clean (`--progress=none|plain|live`):
//!
//! * [`ProgressMode::None`] — write nothing.
//! * [`ProgressMode::Plain`] — append-only lines, throttled (a new line
//!   at most every ~10% of progress or every two seconds), suitable for
//!   CI logs and post-hoc artifact inspection.
//! * [`ProgressMode::Live`] — a single carriage-return-rewritten status
//!   line for interactive terminals.
//!
//! Progress goes to whatever `Write` the caller hands over (the CLI
//! passes stderr, so stdout stays machine-readable); rendering is
//! advisory and never fails the sweep — write errors are ignored.

use crate::protocol::CampaignEvent;
use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

/// Plain-mode throttle default: a line at most every this often (or
/// every ~10% of progress, whichever comes first). Override per
/// reporter with [`ProgressReporter::with_plain_interval`].
const DEFAULT_PLAIN_INTERVAL: Duration = Duration::from_secs(2);

/// ETAs beyond this many seconds render as `--`: with one sample and a
/// coarse clock the extrapolation is noise, not a forecast.
const MAX_ETA_SECS: f64 = 1e9;

/// How (and whether) to render campaign progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressMode {
    /// No progress output at all.
    None,
    /// Throttled append-only lines (CI-friendly).
    Plain,
    /// One `\r`-rewritten status line (interactive terminals).
    Live,
}

impl ProgressMode {
    /// Parse a `--progress` knob value.
    pub fn parse(s: &str) -> Result<ProgressMode, String> {
        match s {
            "none" => Ok(ProgressMode::None),
            "plain" => Ok(ProgressMode::Plain),
            "live" => Ok(ProgressMode::Live),
            other => Err(format!("unknown progress mode {other:?} (none|plain|live)")),
        }
    }
}

/// Renders campaign progress from observed [`CampaignEvent`]s.
pub struct ProgressReporter {
    mode: ProgressMode,
    out: Box<dyn Write + Send>,
    start: Instant,
    /// Totals announced by a `plan` event (authoritative) or summed
    /// from `hello` events (v1 streams without a plan).
    total_cells: usize,
    total_refs: usize,
    /// Whether a `plan` event fixed the totals — `hello` totals are
    /// ignored from then on (lease-consuming workers announce zeros).
    planned: bool,
    workers: usize,
    done_cells: usize,
    done_refs: usize,
    cache_hits: usize,
    lookups: usize,
    last_render: Option<Instant>,
    /// Progress (in percent) at the last plain-mode line.
    last_percent: f64,
    /// Width of the last live-mode line (for clean rewrites).
    last_width: usize,
    /// Plain-mode time throttle (see `render`).
    plain_interval: Duration,
}

impl ProgressReporter {
    /// Reporter rendering to `out` in the given mode.
    pub fn new(mode: ProgressMode, out: Box<dyn Write + Send>) -> ProgressReporter {
        ProgressReporter {
            mode,
            out,
            start: Instant::now(),
            total_cells: 0,
            total_refs: 0,
            planned: false,
            workers: 0,
            done_cells: 0,
            done_refs: 0,
            cache_hits: 0,
            lookups: 0,
            last_render: None,
            last_percent: -1.0,
            last_width: 0,
            plain_interval: DEFAULT_PLAIN_INTERVAL,
        }
    }

    /// Reporter rendering to stderr, with one safety adjustment:
    /// [`ProgressMode::Live`]'s carriage-return rewriting is only
    /// legible on a terminal, so when stderr is **not** a TTY (CI, a
    /// `2> file` redirect, a pipe) live mode falls back to
    /// [`ProgressMode::Plain`] — append-only lines instead of one long
    /// `\r`-glued line in the log.
    pub fn stderr(mode: ProgressMode) -> ProgressReporter {
        let mode = match mode {
            ProgressMode::Live if !std::io::stderr().is_terminal() => ProgressMode::Plain,
            other => other,
        };
        ProgressReporter::new(mode, Box::new(std::io::stderr()))
    }

    /// Override the plain-mode time throttle (default 2s): a line is
    /// emitted when `interval` has passed since the last one, or when
    /// progress advanced ≥ 10%, whichever comes first.
    /// `Duration::ZERO` renders every event.
    pub fn with_plain_interval(mut self, interval: Duration) -> ProgressReporter {
        self.plain_interval = interval;
        self
    }

    /// Silent reporter (for callers that do not want progress at all).
    pub fn disabled() -> ProgressReporter {
        ProgressReporter::new(ProgressMode::None, Box::new(std::io::sink()))
    }

    /// Fold one worker event into the counters and maybe re-render.
    pub fn observe(&mut self, event: &CampaignEvent) {
        match event {
            CampaignEvent::Plan {
                cells, references, ..
            } => {
                // The coordinator's plan is authoritative: totals are
                // fixed up front, and the ETA extrapolates over them no
                // matter how leases are batched across workers.
                self.planned = true;
                self.total_cells = *cells;
                self.total_refs = *references;
            }
            CampaignEvent::Hello {
                cells, references, ..
            } => {
                self.workers += 1;
                if !self.planned {
                    self.total_cells += cells;
                    self.total_refs += references;
                }
            }
            CampaignEvent::Reference { cached, .. } => {
                self.done_refs += 1;
                self.lookups += 1;
                self.cache_hits += usize::from(*cached);
            }
            CampaignEvent::Cell { cached, .. } => {
                self.done_cells += 1;
                self.lookups += 1;
                self.cache_hits += usize::from(*cached);
            }
            CampaignEvent::LeaseStart { .. }
            | CampaignEvent::LeaseDone { .. }
            | CampaignEvent::Done { .. }
            | CampaignEvent::Error { .. }
            | CampaignEvent::Telemetry { .. }
            | CampaignEvent::Unknown { .. } => {}
        }
        self.render(false);
    }

    /// Final render (always emitted, with a terminating newline in
    /// live mode). Call once after the event streams close.
    pub fn finish(&mut self) {
        self.render(true);
        if self.mode == ProgressMode::Live && self.last_render.is_some() {
            let _ = writeln!(self.out);
        }
        let _ = self.out.flush();
    }

    fn percent(&self) -> f64 {
        if self.total_cells == 0 {
            0.0
        } else {
            self.done_cells as f64 * 100.0 / self.total_cells as f64
        }
    }

    /// One status line: counters, rate, cache-hit share, ETA.
    fn status_line(&self) -> String {
        let elapsed = self.start.elapsed().as_secs_f64();
        // Rate needs at least one finished cell AND measurable elapsed
        // time (coarse clocks can report 0.0 after the first sample);
        // anything else would divide garbage into the ETA below.
        let rate = if self.done_cells > 0 && elapsed > 0.0 {
            self.done_cells as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.total_cells.saturating_sub(self.done_cells);
        let eta_secs = remaining as f64 / rate; // NaN/inf when rate is 0
        let eta = if remaining == 0 {
            "done".to_string()
        } else if eta_secs.is_finite() && eta_secs <= MAX_ETA_SECS {
            format!("{}s", eta_secs.ceil() as u64)
        } else {
            "--".to_string()
        };
        let hit_rate = if self.lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 * 100.0 / self.lookups as f64
        };
        format!(
            "progress: cells {}/{} ({:.0}%) refs {}/{} | {} worker(s) | {:.1} cells/s | cache {:.0}% | eta {}",
            self.done_cells,
            self.total_cells,
            self.percent(),
            self.done_refs,
            self.total_refs,
            self.workers,
            rate,
            hit_rate,
            eta
        )
    }

    fn render(&mut self, force: bool) {
        match self.mode {
            ProgressMode::None => {}
            ProgressMode::Plain => {
                // Throttle: a line per ~10% of progress or per
                // `plain_interval`, whichever comes first, so huge
                // campaigns do not flood the log and tiny ones still
                // show every step.
                let percent = self.percent();
                let due = force
                    || percent - self.last_percent >= 10.0
                    || self
                        .last_render
                        .is_none_or(|t| t.elapsed() >= self.plain_interval);
                if !due {
                    return;
                }
                self.last_percent = percent;
                self.last_render = Some(Instant::now());
                let line = self.status_line();
                let _ = writeln!(self.out, "{line}");
            }
            ProgressMode::Live => {
                // Rewrite in place, at most ~10×/s (plus the final one).
                let due = force
                    || self
                        .last_render
                        .is_none_or(|t| t.elapsed().as_secs_f64() >= 0.1);
                if !due {
                    return;
                }
                self.last_render = Some(Instant::now());
                let line = self.status_line();
                let pad = self.last_width.saturating_sub(line.len());
                self.last_width = line.len();
                let _ = write!(self.out, "\r{line}{}", " ".repeat(pad));
                let _ = self.out.flush();
            }
        }
    }
}

impl crate::observer::CampaignObserver for ProgressReporter {
    /// Progress is an ordinary event subscriber: attach one with
    /// [`CampaignBuilder::progress`](crate::CampaignBuilder::progress)
    /// (or `observer(...)`) and it renders from the same stream every
    /// other observer sees. Rendering is advisory — it never fails the
    /// campaign.
    fn on_event(&mut self, event: &CampaignEvent) -> Result<(), crate::EngineError> {
        self.observe(event);
        Ok(())
    }

    fn on_finish(&mut self) -> Result<(), crate::EngineError> {
        self.finish();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// `Write` handle whose buffer outlives the boxed writer.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn feed(reporter: &mut ProgressReporter, cells: usize) {
        reporter.observe(&CampaignEvent::Hello {
            shard: 0,
            shard_count: 1,
            cells,
            references: 1,
            version: None,
            jobs: None,
        });
        reporter.observe(&CampaignEvent::Reference {
            cached: false,
            scenario: None,
        });
        for i in 0..cells {
            reporter.observe(&CampaignEvent::Cell {
                index: i,
                cached: i % 2 == 0,
                tier: None,
                row: crate::sink::SweepRow {
                    dag: "d".into(),
                    tasks: 1,
                    edges: 0,
                    model: "pfail=0.1".into(),
                    lambda: 0.1,
                    estimator: "first-order".into(),
                    value: 1.0,
                    reference: 1.0,
                    reference_std_error: 0.0,
                    rel_error: 0.0,
                    elapsed_s: 0.0,
                    seed: 0,
                },
            });
        }
        reporter.finish();
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(ProgressMode::parse("none").unwrap(), ProgressMode::None);
        assert_eq!(ProgressMode::parse("plain").unwrap(), ProgressMode::Plain);
        assert_eq!(ProgressMode::parse("live").unwrap(), ProgressMode::Live);
        assert!(ProgressMode::parse("loud").is_err());
    }

    #[test]
    fn plain_mode_reports_counters_rate_and_eta() {
        let buf = SharedBuf::default();
        let mut p = ProgressReporter::new(ProgressMode::Plain, Box::new(buf.clone()));
        feed(&mut p, 4);
        let text = buf.text();
        assert!(text.contains("cells 4/4 (100%)"), "{text}");
        assert!(text.contains("refs 1/1"), "{text}");
        assert!(text.contains("cells/s"), "{text}");
        assert!(text.contains("cache 40%"), "{text}");
        assert!(text.contains("eta done"), "{text}");
        // Every cell crosses a >10% threshold here, so each renders.
        assert!(text.lines().count() >= 4, "{text}");
        assert!(!text.contains('\r'), "plain mode never rewrites");
    }

    #[test]
    fn live_mode_rewrites_one_line() {
        let buf = SharedBuf::default();
        let mut p = ProgressReporter::new(ProgressMode::Live, Box::new(buf.clone()));
        feed(&mut p, 3);
        let text = buf.text();
        assert!(text.contains('\r'), "{text:?}");
        assert!(text.ends_with('\n'), "finish terminates the line");
        assert!(text.contains("cells 3/3"), "{text}");
    }

    #[test]
    fn eta_shows_dashes_before_the_first_finished_cell() {
        let buf = SharedBuf::default();
        let mut p = ProgressReporter::new(ProgressMode::Plain, Box::new(buf.clone()));
        p.observe(&CampaignEvent::Hello {
            shard: 0,
            shard_count: 1,
            cells: 100,
            references: 1,
            version: None,
            jobs: None,
        });
        let text = buf.text();
        assert!(text.contains("cells 0/100"), "{text}");
        assert!(text.contains("eta --"), "no rate sample yet: {text}");
        assert!(text.contains("0.0 cells/s"), "{text}");
    }

    #[test]
    fn plan_fixes_totals_and_hello_totals_are_ignored() {
        let buf = SharedBuf::default();
        let mut p = ProgressReporter::new(ProgressMode::Plain, Box::new(buf.clone()))
            .with_plain_interval(Duration::ZERO);
        p.observe(&CampaignEvent::Plan {
            cells: 8,
            references: 4,
            leases: 4,
        });
        // Lease-consuming workers announce zeros; worker count still
        // tracks hellos, totals stay the plan's.
        for w in 0..2 {
            p.observe(&CampaignEvent::Hello {
                shard: w,
                shard_count: 0,
                cells: 0,
                references: 0,
                version: Some(2),
                jobs: Some(2),
            });
        }
        p.observe(&CampaignEvent::LeaseStart {
            lease_id: 0,
            cells: 2,
        });
        p.observe(&CampaignEvent::Reference {
            cached: true,
            scenario: Some(0),
        });
        p.observe(&CampaignEvent::LeaseDone {
            lease_id: 0,
            cells: 2,
            hits: 1,
            misses: 2,
        });
        p.finish();
        let text = buf.text();
        assert!(text.contains("cells 0/8"), "{text}");
        assert!(text.contains("refs 1/4"), "{text}");
        assert!(text.contains("2 worker(s)"), "{text}");
    }

    #[test]
    fn plain_interval_zero_renders_every_event() {
        let buf = SharedBuf::default();
        let mut p = ProgressReporter::new(ProgressMode::Plain, Box::new(buf.clone()))
            .with_plain_interval(Duration::ZERO);
        feed(&mut p, 50); // 2% per cell: the 10% rule alone would skip most
        let text = buf.text();
        // Hello + 50 cells + reference + forced finish line.
        assert!(text.lines().count() >= 51, "{}", text.lines().count());
    }

    #[test]
    fn stderr_constructor_downgrades_live_off_tty() {
        // The test harness may or may not attach a TTY; assert the
        // mapping against what stderr actually is right now.
        let expect_live = if std::io::stderr().is_terminal() {
            ProgressMode::Live
        } else {
            ProgressMode::Plain
        };
        assert_eq!(
            ProgressReporter::stderr(ProgressMode::Live).mode,
            expect_live
        );
        assert_eq!(
            ProgressReporter::stderr(ProgressMode::Plain).mode,
            ProgressMode::Plain
        );
        assert_eq!(
            ProgressReporter::stderr(ProgressMode::None).mode,
            ProgressMode::None
        );
    }

    #[test]
    fn none_mode_is_silent_and_disabled_works() {
        let buf = SharedBuf::default();
        let mut p = ProgressReporter::new(ProgressMode::None, Box::new(buf.clone()));
        feed(&mut p, 2);
        assert!(buf.text().is_empty());
        feed(&mut ProgressReporter::disabled(), 2);
    }
}
