//! Work leasing: the coordinator-side ready queue, the campaign plan,
//! and the shared lease executor behind `ExecBackend` v2.
//!
//! PR 4's distribution partitioned cells **statically** by hashing
//! their cache keys; heterogeneous cells (an `exact` cell costs orders
//! of magnitude more than an analytic one) left workers idle while the
//! unlucky shard dragged the tail. v2 inverts control: the coordinator
//! owns a [`LeaseQueue`] of [`WorkLease`] cell batches — one lease per
//! (instance × estimator) group, so the per-group estimator
//! preparation amortizes exactly as before — and workers *pull* the
//! next batch whenever they finish one. A lease whose worker crashes
//! is re-queued (bounded by [`LeaseQueue::with_max_attempts`]) and any
//! worker may pick it up: results are deterministic and the campaign
//! merge deduplicates by cell index, so duplicated attempts are
//! harmless.
//!
//! The three pieces:
//!
//! * [`CampaignPlan`] — the validated expansion plus the lease list
//!   every v2 backend executes; its totals feed the
//!   [`Plan`](crate::CampaignEvent::Plan) event (under leasing, a
//!   worker cannot announce its share up front).
//! * [`LeaseQueue`] — the thread-safe ready queue: [`LeaseQueue::next`]
//!   / [`LeaseQueue::poll_next`] hand out batches,
//!   [`LeaseQueue::complete`] retires them, [`LeaseQueue::requeue`]
//!   returns a crashed worker's batch for another attempt.
//! * [`LeaseExecutor`] — the cache-first cell evaluator shared by every
//!   consumer (in-process threads, `sweep-worker --leases` processes,
//!   spool-directory workers), built on the same
//!   [`evaluate_unit`]/[`make_row`] definitions as v1 sharding — which
//!   is what keeps lease interleavings byte-identical to a
//!   single-process run.
//!
//! Leases cross process boundaries as one JSON line each
//! ([`encode_lease`]/[`decode_lease`]), mirroring the event protocol.

use crate::cache::{cell_key, CacheTier, ResultCache};
use crate::campaign::BackendContext;
use crate::cancel::CancelToken;
use crate::error::EngineError;
use crate::protocol::CampaignEvent;
use crate::registry::EstimatorRegistry;
use crate::runner::{cell_index, derive_seed, evaluate_unit, expand, make_row, Expansion};
use crate::spec::SweepSpec;
use crate::telemetry::Telemetry;
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;
use stochdag_core::{Estimate, Estimator, MonteCarloEstimator, PreparedEstimator};
use stochdag_dag::{structural_hash, PreparedDag};

/// One leased batch of work: a stable id plus the global indices of the
/// cells to execute. The id survives re-queued attempts, so the
/// coordinator can deduplicate [`LeaseDone`](CampaignEvent::LeaseDone)
/// totals and cap retries per lease rather than per worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkLease {
    /// Stable lease id (unique within a campaign).
    pub lease_id: usize,
    /// Global cell indices of the batch (see
    /// [`Campaign::dry_run`](crate::Campaign::dry_run) for the
    /// deterministic scenario-major numbering).
    pub cells: Vec<usize>,
}

impl Serialize for WorkLease {
    fn serialize(&self) -> Value {
        Value::obj([
            ("lease_id", self.lease_id.serialize()),
            ("cells", self.cells.serialize()),
        ])
    }
}

impl Deserialize for WorkLease {
    fn deserialize(v: &Value) -> Result<WorkLease, serde::Error> {
        Ok(WorkLease {
            lease_id: usize::deserialize(v.require("lease_id")?)?,
            cells: Vec::<usize>::deserialize(v.require("cells")?)?,
        })
    }
}

/// Encode a lease as one wire line (no trailing newline) — the
/// coordinator → worker half of the leasing protocol (worker →
/// coordinator traffic is the ordinary event stream).
pub fn encode_lease(lease: &WorkLease) -> String {
    serde::json::to_string(lease)
}

/// Decode one lease line, with the offending text in the error so a
/// torn stdin stream is diagnosable.
pub fn decode_lease(line: &str) -> Result<WorkLease, String> {
    serde::json::from_str::<WorkLease>(line.trim_end())
        .map_err(|e| format!("bad lease request {line:?}: {e}"))
}

/// What [`LeaseQueue::poll_next`] observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeasePoll {
    /// A lease was granted; execute it and [`LeaseQueue::complete`] it.
    Ready(WorkLease),
    /// Nothing ready right now, but uncompleted leases are outstanding
    /// on other consumers — poll again (checking cancellation first).
    Pending,
    /// Every lease completed, or the queue was closed; stop consuming.
    Drained,
}

struct QueueInner {
    ready: VecDeque<usize>,
    by_id: HashMap<usize, WorkLease>,
    outstanding: HashSet<usize>,
    completed: HashSet<usize>,
    attempts: HashMap<usize, usize>,
    total: usize,
    max_attempts: usize,
    closed: bool,
}

impl QueueInner {
    fn grant(&mut self) -> Option<WorkLease> {
        let id = self.ready.pop_front()?;
        *self.attempts.entry(id).or_insert(0) += 1;
        self.outstanding.insert(id);
        Some(self.by_id[&id].clone())
    }

    fn drained(&self) -> bool {
        self.closed || self.completed.len() == self.total
    }
}

/// The coordinator's ready queue of [`WorkLease`] batches — the heart
/// of `ExecBackend` v2's pull scheduling.
///
/// Consumers (in-process worker threads, the per-slot pipe pumps of
/// [`MultiProcess`](crate::MultiProcess), the
/// [`SharedFs`](crate::SharedFs) spool coordinator) call
/// [`next`](LeaseQueue::next) or [`poll_next`](LeaseQueue::poll_next)
/// to pull a batch, and [`complete`](LeaseQueue::complete) when its
/// `LeaseDone` arrives. When a consumer dies mid-lease,
/// [`requeue`](LeaseQueue::requeue) puts the batch back for any other
/// consumer — up to `max_attempts` grants per lease (default 2: the
/// initial attempt plus one retry, generalizing PR 5's single
/// shard-retry), after which `requeue` refuses and the campaign fails.
///
/// All methods take `&self`; the queue is fully thread-safe.
pub struct LeaseQueue {
    inner: Mutex<QueueInner>,
    cvar: Condvar,
}

impl LeaseQueue {
    /// Queue over `leases`, each grantable at most twice.
    pub fn new(leases: Vec<WorkLease>) -> LeaseQueue {
        let ready: VecDeque<usize> = leases.iter().map(|l| l.lease_id).collect();
        let by_id: HashMap<usize, WorkLease> =
            leases.into_iter().map(|l| (l.lease_id, l)).collect();
        debug_assert_eq!(ready.len(), by_id.len(), "lease ids must be unique");
        LeaseQueue {
            inner: Mutex::new(QueueInner {
                total: by_id.len(),
                ready,
                by_id,
                outstanding: HashSet::new(),
                completed: HashSet::new(),
                attempts: HashMap::new(),
                max_attempts: 2,
                closed: false,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Change the per-lease grant cap (minimum 1).
    pub fn with_max_attempts(self, max_attempts: usize) -> LeaseQueue {
        self.inner.lock().expect("lease queue").max_attempts = max_attempts.max(1);
        self
    }

    /// Grant the next ready lease, or `None` when nothing is ready
    /// *right now* (other consumers may still fail and re-queue; use
    /// [`poll_next`](LeaseQueue::poll_next) to distinguish).
    pub fn next(&self) -> Option<WorkLease> {
        self.inner.lock().expect("lease queue").grant()
    }

    /// Grant the next ready lease, waiting up to `wait` for one to
    /// appear. Returns [`LeasePoll::Pending`] after the wait so callers
    /// can check cancellation between polls, and
    /// [`LeasePoll::Drained`] once every lease completed (or the queue
    /// was [`close`](LeaseQueue::close)d).
    pub fn poll_next(&self, wait: Duration) -> LeasePoll {
        let mut inner = self.inner.lock().expect("lease queue");
        if let Some(l) = inner.grant() {
            return LeasePoll::Ready(l);
        }
        if inner.drained() {
            return LeasePoll::Drained;
        }
        if !wait.is_zero() {
            let (mut inner, _timeout) = self.cvar.wait_timeout(inner, wait).expect("lease queue");
            if let Some(l) = inner.grant() {
                return LeasePoll::Ready(l);
            }
            if inner.drained() {
                return LeasePoll::Drained;
            }
        }
        LeasePoll::Pending
    }

    /// Retire a finished lease (its `LeaseDone` arrived).
    pub fn complete(&self, lease_id: usize) {
        let mut inner = self.inner.lock().expect("lease queue");
        inner.outstanding.remove(&lease_id);
        inner.completed.insert(lease_id);
        self.cvar.notify_all();
    }

    /// Return a crashed consumer's lease for another attempt. `true`
    /// when the lease is back in the queue (or already completed by a
    /// duplicate attempt — a stale spool reclaim, for instance);
    /// `false` when the lease has exhausted its grant cap and the
    /// campaign must fail.
    pub fn requeue(&self, lease_id: usize) -> bool {
        let mut inner = self.inner.lock().expect("lease queue");
        if inner.completed.contains(&lease_id) || !inner.by_id.contains_key(&lease_id) {
            return true;
        }
        if inner.attempts.get(&lease_id).copied().unwrap_or(0) >= inner.max_attempts {
            return false;
        }
        inner.outstanding.remove(&lease_id);
        if !inner.ready.contains(&lease_id) {
            inner.ready.push_back(lease_id);
        }
        self.cvar.notify_all();
        true
    }

    /// Stop handing out leases: every subsequent poll observes
    /// [`LeasePoll::Drained`]. Used by a fatally-failed consumer so its
    /// peers wind down instead of waiting forever.
    pub fn close(&self) {
        self.inner.lock().expect("lease queue").closed = true;
        self.cvar.notify_all();
    }

    /// Whether this lease's `LeaseDone` was recorded.
    pub fn is_completed(&self, lease_id: usize) -> bool {
        self.inner
            .lock()
            .expect("lease queue")
            .completed
            .contains(&lease_id)
    }

    /// Whether every lease completed.
    pub fn is_drained(&self) -> bool {
        let inner = self.inner.lock().expect("lease queue");
        inner.completed.len() == inner.total
    }

    /// How often this lease has been granted so far.
    pub fn attempts(&self, lease_id: usize) -> usize {
        self.inner
            .lock()
            .expect("lease queue")
            .attempts
            .get(&lease_id)
            .copied()
            .unwrap_or(0)
    }

    /// Total number of leases in the campaign.
    pub fn total(&self) -> usize {
        self.inner.lock().expect("lease queue").total
    }

    /// Leases granted but neither completed nor re-queued.
    pub fn outstanding_count(&self) -> usize {
        self.inner.lock().expect("lease queue").outstanding.len()
    }

    /// Leases completed so far.
    pub fn completed_count(&self) -> usize {
        self.inner.lock().expect("lease queue").completed.len()
    }
}

/// The validated, fully-expanded campaign plus its lease list — what
/// the coordinator plans before any backend starts, handed to v2
/// backends through [`BackendContext::plan`].
///
/// One lease per (instance × estimator) group, cells in ascending
/// scenario order: the same work units v1 parallelized over, so the
/// one-preparation-per-group amortization (and its cost attribution to
/// the group's first computed cell) is preserved under leasing.
pub struct CampaignPlan {
    pub(crate) expansion: Expansion,
    pub(crate) hashes: Vec<u128>,
    pub(crate) m_count: usize,
    pub(crate) e_count: usize,
    leases: Vec<WorkLease>,
}

impl std::fmt::Debug for CampaignPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignPlan")
            .field("cells", &self.cells())
            .field("references", &self.references())
            .field("leases", &self.leases.len())
            .finish()
    }
}

impl CampaignPlan {
    /// Expand and validate `spec` into the plan every v2 backend
    /// executes.
    pub fn new(
        spec: &SweepSpec,
        registry: &EstimatorRegistry,
    ) -> Result<CampaignPlan, EngineError> {
        let expansion = expand(spec, registry)?;
        let hashes: Vec<u128> = expansion
            .instances
            .iter()
            .map(|i| structural_hash(&i.dag))
            .collect();
        let m_count = spec.model_count();
        let e_count = expansion.estimator_ids.len();
        let mut leases = Vec::with_capacity(expansion.instances.len() * e_count);
        for i in 0..expansion.instances.len() {
            for e in 0..e_count {
                leases.push(WorkLease {
                    lease_id: leases.len(),
                    cells: (0..m_count)
                        .map(|m| cell_index(i, m, e, m_count, e_count))
                        .collect(),
                });
            }
        }
        Ok(CampaignPlan {
            expansion,
            hashes,
            m_count,
            e_count,
            leases,
        })
    }

    /// Total estimator cells of the campaign.
    pub fn cells(&self) -> usize {
        self.expansion.instances.len() * self.m_count * self.e_count
    }

    /// Total Monte-Carlo reference scenarios.
    pub fn references(&self) -> usize {
        self.expansion.instances.len() * self.m_count
    }

    /// The planned lease list, in deterministic order.
    pub fn leases(&self) -> &[WorkLease] {
        &self.leases
    }
}

/// The cache-first cell evaluator every lease consumer shares.
///
/// One executor serves a whole campaign session: DAG instances freeze
/// lazily (at most once each, whichever lease touches them first) and
/// reference scenarios resolve exactly once per session — the first
/// lease needing a scenario probes/computes it and emits its
/// [`Reference`](CampaignEvent::Reference) event (tagged with the
/// global scenario index so the coordinator deduplicates across
/// *sessions*); later leases reuse the in-memory estimate without
/// another cache probe, exactly like v1's per-shard reference phase.
///
/// [`run`](LeaseExecutor::run) is safe to call from many threads at
/// once over one shared executor — that is precisely how the
/// [`InProcess`](crate::InProcess) backend executes a campaign.
pub struct LeaseExecutor<'a> {
    spec: &'a SweepSpec,
    registry: &'a EstimatorRegistry,
    cache: &'a ResultCache,
    tel: Telemetry,
    cancel: &'a CancelToken,
    plan: &'a CampaignPlan,
    prepared: Vec<OnceLock<PreparedDag>>,
    refs: Vec<Mutex<Option<Estimate>>>,
}

impl<'a> LeaseExecutor<'a> {
    /// Executor over the context's plan. Telemetry goes to a child
    /// collector of the campaign's (see
    /// [`telemetry`](LeaseExecutor::telemetry)).
    pub fn new(ctx: &BackendContext<'a>) -> LeaseExecutor<'a> {
        let plan = ctx.plan;
        LeaseExecutor {
            spec: ctx.spec,
            registry: ctx.registry,
            cache: ctx.cache,
            tel: ctx.telemetry.child(),
            cancel: ctx.cancel,
            plan,
            prepared: (0..plan.expansion.instances.len())
                .map(|_| OnceLock::new())
                .collect(),
            refs: (0..plan.references()).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// The executor's session-local telemetry collector (a
    /// [`Telemetry::child`] of the campaign's): snapshot it into a
    /// [`Telemetry`](CampaignEvent::Telemetry) event when the session
    /// ends, as the shipped backends do.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    fn prepared_dag(&self, i: usize) -> &PreparedDag {
        self.prepared[i].get_or_init(|| {
            let _freeze = self.tel.span("prepare_dag");
            PreparedDag::new(self.plan.expansion.instances[i].dag.clone())
        })
    }

    /// Execute one lease, emitting `LeaseStart`, one event per
    /// reference/cell, and `LeaseDone` with the attempt's cache
    /// totals. Cancellation is polled between cells; an `emit` error
    /// aborts the lease (already-computed cells are in the cache, so a
    /// re-queued attempt resumes cheaply).
    pub fn run(
        &self,
        lease: &WorkLease,
        emit: &dyn Fn(CampaignEvent) -> Result<(), EngineError>,
    ) -> Result<(), EngineError> {
        let Expansion {
            estimator_ids,
            instances,
            models,
            reference_id,
        } = &self.plan.expansion;
        let (m_count, e_count) = (self.plan.m_count, self.plan.e_count);
        let total = self.plan.cells();
        emit(CampaignEvent::LeaseStart {
            lease_id: lease.lease_id,
            cells: lease.cells.len(),
        })?;
        let mut hits = 0usize;
        let mut misses = 0usize;
        let mut count = |tier: Option<CacheTier>| {
            if tier.is_some() {
                hits += 1;
            } else {
                misses += 1;
            }
        };
        // Lazy one-preparation-per-(instance × estimator) group, reset
        // when the lease crosses a group boundary — planned leases
        // never do, so cost attribution matches v1 sharding exactly.
        let mut prep: Option<Box<dyn PreparedEstimator>> = None;
        let mut prep_group: Option<(usize, usize)> = None;
        for &idx in &lease.cells {
            if self.cancel.is_cancelled() {
                return Err(EngineError::cancelled());
            }
            if idx >= total {
                return Err(EngineError::spec(format!(
                    "lease {} cell {idx} out of range (campaign has {total} cells)",
                    lease.lease_id
                )));
            }
            let e = idx % e_count;
            let m = (idx / e_count) % m_count;
            let i = idx / (e_count * m_count);
            let pdag = self.prepared_dag(i);
            let entry = &models[i][m];
            let (model, label) = (&entry.model, &entry.label);
            let scenario = i * m_count + m;
            let reference = {
                let mut slot = self.refs[scenario].lock().expect("reference slot");
                match slot.as_ref() {
                    Some(est) => est.clone(),
                    None => {
                        let ref_unit = entry.unit(reference_id);
                        let seed = derive_seed(
                            self.spec.seed,
                            self.plan.hashes[i],
                            model.lambda,
                            &ref_unit,
                        );
                        let key = cell_key(self.plan.hashes[i], model.lambda, &ref_unit, seed);
                        let trials = self.spec.reference_trials;
                        let sampling = self.spec.reference_sampling;
                        let mut ref_prep: Option<Box<dyn PreparedEstimator>> = None;
                        let (est, tier) = evaluate_unit(
                            &self.tel,
                            self.cache,
                            &key,
                            seed,
                            model,
                            &entry.scenario,
                            &mut ref_prep,
                            || {
                                MonteCarloEstimator::new(trials)
                                    .with_sampling(sampling)
                                    .prepare(pdag)
                            },
                        )?;
                        self.tel.count_lookup("references", tier);
                        count(tier);
                        emit(CampaignEvent::Reference {
                            cached: tier.is_some(),
                            scenario: Some(scenario),
                        })?;
                        *slot = Some(est.clone());
                        est
                    }
                }
            };
            let (est_spec, canonical) = &estimator_ids[e];
            let unit = entry.unit(canonical);
            let seed = derive_seed(self.spec.seed, self.plan.hashes[i], model.lambda, &unit);
            let key = cell_key(self.plan.hashes[i], model.lambda, &unit, seed);
            if prep_group != Some((i, e)) {
                prep = None;
                prep_group = Some((i, e));
            }
            let (est, tier) = evaluate_unit(
                &self.tel,
                self.cache,
                &key,
                seed,
                model,
                &entry.scenario,
                &mut prep,
                || {
                    self.registry
                        .build(est_spec, seed)
                        .expect("estimator specs validated before launch")
                        .prepare(pdag)
                },
            )?;
            self.tel.count_lookup("cells", tier);
            count(tier);
            let row = make_row(
                &instances[i].id,
                pdag,
                label,
                model,
                canonical,
                &est,
                &reference,
                seed,
            );
            emit(CampaignEvent::Cell {
                index: idx,
                cached: tier.is_some(),
                tier,
                row,
            })?;
        }
        emit(CampaignEvent::LeaseDone {
            lease_id: lease.lease_id,
            cells: lease.cells.len(),
            hits,
            misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lease(id: usize) -> WorkLease {
        WorkLease {
            lease_id: id,
            cells: vec![id * 2, id * 2 + 1],
        }
    }

    #[test]
    fn lease_lines_round_trip_and_reject_garbage() {
        let l = WorkLease {
            lease_id: 7,
            cells: vec![14, 15, 16],
        };
        let line = encode_lease(&l);
        assert!(!line.contains('\n'));
        assert_eq!(decode_lease(&line).unwrap(), l);
        assert!(decode_lease("").is_err());
        assert!(decode_lease("{\"lease_id\":1}").is_err());
        assert!(decode_lease("{not json").is_err());
    }

    #[test]
    fn queue_grants_completes_and_drains() {
        let q = LeaseQueue::new((0..3).map(lease).collect());
        assert_eq!(q.total(), 3);
        let a = q.next().unwrap();
        let b = q.next().unwrap();
        assert_eq!((a.lease_id, b.lease_id), (0, 1));
        assert_eq!(q.outstanding_count(), 2);
        q.complete(a.lease_id);
        q.complete(b.lease_id);
        assert!(!q.is_drained());
        match q.poll_next(Duration::ZERO) {
            LeasePoll::Ready(c) => {
                assert_eq!(c.lease_id, 2);
                q.complete(2);
            }
            other => panic!("expected a grant, got {other:?}"),
        }
        assert!(q.is_drained());
        assert_eq!(q.poll_next(Duration::ZERO), LeasePoll::Drained);
        assert_eq!(q.next(), None);
    }

    #[test]
    fn poll_reports_pending_while_leases_are_outstanding() {
        let q = LeaseQueue::new(vec![lease(0)]);
        let granted = q.next().unwrap();
        assert_eq!(
            q.poll_next(Duration::from_millis(1)),
            LeasePoll::Pending,
            "incomplete outstanding lease must not read as drained"
        );
        q.complete(granted.lease_id);
        assert_eq!(q.poll_next(Duration::ZERO), LeasePoll::Drained);
    }

    #[test]
    fn requeue_caps_attempts_and_tolerates_completed_leases() {
        let q = LeaseQueue::new(vec![lease(0), lease(1)]);
        let first = q.next().unwrap();
        assert_eq!(q.attempts(first.lease_id), 1);
        assert!(q.requeue(first.lease_id), "first retry is allowed");
        let again = q.next().unwrap();
        assert_eq!(again.lease_id, 1, "requeued lease goes to the back");
        let retried = q.next().unwrap();
        assert_eq!(retried.lease_id, first.lease_id);
        assert_eq!(q.attempts(first.lease_id), 2);
        assert!(
            !q.requeue(first.lease_id),
            "second failure exhausts the default cap"
        );
        // A completed lease's stale requeue (e.g. a spool reclaim that
        // raced a slow worker) is a harmless no-op.
        q.complete(again.lease_id);
        assert!(q.requeue(again.lease_id));
        assert_eq!(q.completed_count(), 1);
    }

    #[test]
    fn close_drains_waiting_consumers() {
        let q = LeaseQueue::new(vec![lease(0)]);
        let _granted = q.next().unwrap();
        q.close();
        assert_eq!(q.poll_next(Duration::from_millis(50)), LeasePoll::Drained);
        assert!(!q.is_drained(), "close() is not completion");
    }

    #[test]
    fn plan_leases_cover_every_cell_exactly_once_per_group() {
        use crate::spec::DagSpec;
        use stochdag_core::EstimatorSpec;
        use stochdag_taskgraphs::FactorizationClass;

        let spec = SweepSpec {
            name: "plan".into(),
            seed: 3,
            pfails: vec![0.01, 0.001],
            lambdas: vec![],
            estimators: vec![EstimatorSpec::FirstOrder, EstimatorSpec::Sculli],
            reference_trials: 100,
            reference_sampling: stochdag_core::SamplingModel::Geometric,
            jobs: None,
            scenarios: vec![],
            dags: vec![DagSpec::Factorization {
                class: FactorizationClass::Cholesky,
                ks: vec![2, 3, 4],
            }],
        };
        let plan = CampaignPlan::new(&spec, &EstimatorRegistry::standard()).unwrap();
        // 3 instances × 2 models × 2 estimators.
        assert_eq!(plan.cells(), 12);
        assert_eq!(plan.references(), 6);
        assert_eq!(plan.leases().len(), 6, "one lease per instance × estimator");
        let mut seen: Vec<usize> = Vec::new();
        for (n, l) in plan.leases().iter().enumerate() {
            assert_eq!(l.lease_id, n, "sequential lease ids");
            assert!(
                l.cells.windows(2).all(|w| w[0] < w[1]),
                "cells ascend within a lease"
            );
            seen.extend(&l.cells);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>(), "full disjoint cover");
    }
}
