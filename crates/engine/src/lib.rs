//! # stochdag-engine — parallel scenario-sweep engine
//!
//! The paper's evaluation is a *campaign*: estimator accuracy measured
//! over grids of (DAG family, size, failure probability) against a
//! Monte-Carlo ground truth. This crate turns that pattern into a
//! declarative, parallel, cached subsystem behind **one facade**:
//!
//! * [`Campaign`] — build with [`Campaign::builder`], configure
//!   typed estimators ([`EstimatorSpec`]), a content-addressed
//!   [`ResultCache`], streaming sinks, observers, and an execution
//!   [`ExecBackend`]; then [`run`](Campaign::run),
//!   [`resume_report`](Campaign::resume_report), or
//!   [`dry_run`](Campaign::dry_run).
//! * [`ExecBackend`] — where cells execute: [`InProcess`]
//!   (work-stealing threads) or [`MultiProcess`] (N worker processes
//!   sharing the on-disk cache, crashed shards retried once); the
//!   trait is the seam where a cross-host backend slots in.
//! * [`CampaignObserver`] — one event-subscription API for progress
//!   ([`ProgressReporter`]), custom monitors, and the distributed wire
//!   protocol ([`CampaignEvent`] + [`WireObserver`]).
//! * [`CsvSink`] / [`JsonlSink`] — ordered streaming sinks; re-runs
//!   and every backend produce byte-identical files.
//! * Structured [`EngineError`]s throughout (spec, I/O with paths,
//!   cache, worker, sink-with-cell variants).
//! * [`Telemetry`] — opt-in spans and counters over every phase
//!   (prepare, estimate, cache probes, worker shards), merged across
//!   backends into a deterministic [`MetricsReport`]; disabled by
//!   default at zero cost.
//!
//! ## Quickstart
//!
//! ```
//! use stochdag_engine::{Campaign, SweepSpec, VecSink};
//!
//! let spec = SweepSpec::from_str_auto(r#"
//!     name = "doc"
//!     pfails = [0.01]
//!     estimators = ["first-order", "sculli"]
//!     reference_trials = 500
//!     [[dags]]
//!     kind = "cholesky"
//!     ks = [2]
//! "#).unwrap();
//!
//! let outcome = Campaign::builder(spec.clone())
//!     .sink(VecSink::default())
//!     .build().unwrap()
//!     .run().unwrap();
//! assert_eq!(outcome.cells, 2); // 1 DAG × 1 pfail × 2 estimators
//! assert!(outcome.rows.iter().all(|r| r.rel_error.abs() < 0.2));
//!
//! // Campaigns sharing a cache skip every finished cell; with the
//! // default in-memory cache each run is independent, so share one:
//! use std::sync::Arc;
//! use stochdag_engine::ResultCache;
//! let cache = Arc::new(ResultCache::in_memory());
//! let first = Campaign::builder(spec.clone()).cache(cache.clone())
//!     .build().unwrap().run().unwrap();
//! let again = Campaign::builder(spec).cache(cache.clone())
//!     .build().unwrap().run().unwrap();
//! assert!(again.fully_cached());
//! assert_eq!(again.rows, first.rows);
//! ```
//!
//! ## Distributed campaigns
//!
//! Swap the backend and nothing else changes. Execution is
//! pull-scheduled (`ExecBackend` **v2**): the coordinator expands the
//! spec into a [`CampaignPlan`] of [`WorkLease`] cell batches, loads
//! them into a [`LeaseQueue`], and workers drain batches as they
//! finish — so heterogeneous cell costs balance themselves and a
//! crashed worker's leases are re-queued for the survivors.
//! [`MultiProcess`] spawns N `sweep-worker --leases` processes sharing
//! one on-disk cache, streaming leases over stdin pipes and
//! line-delimited JSON [`CampaignEvent`]s back over stdout;
//! [`SharedFs`] coordinates remote workers through a shared-filesystem
//! spool directory instead of pipes. Either way the campaign core
//! merges the streams into sink output **byte-identical** to an
//! [`InProcess`] run over the same cache — with live progress/ETA from
//! a [`ProgressReporter`]. The `stochdag sweep --workers N` /
//! `sweep --spool DIR` CLI is a thin shell over exactly this.
//!
//! v1 `ExecBackend` implementations (static shard partitioning) keep
//! working through the [`V1Backend`] adapter for a deprecation window
//! — see the [`ExecBackend`] rustdoc for the v1 → v2 migration table.

mod cache;
mod campaign;
mod cancel;
mod error;
mod keys;
mod lease;
mod observer;
mod progress;
mod protocol;
mod registry;
mod runner;
mod shard;
mod sink;
mod spec;
mod spool;
mod telemetry;

pub use cache::{cell_key, CacheGcStats, CacheTier, ResultCache};
pub use campaign::{
    BackendContext, Campaign, CampaignBuilder, Deliver, DryRun, DryRunInstance, ExecBackend,
    ExecBackendV1, InProcess, MultiProcess, V1Backend,
};
pub use cancel::CancelToken;
pub use error::EngineError;
pub use keys::StableHasher;
pub use lease::{
    decode_lease, encode_lease, CampaignPlan, LeaseExecutor, LeasePoll, LeaseQueue, WorkLease,
};
pub use observer::{CampaignObserver, FnObserver};
pub use progress::{ProgressMode, ProgressReporter};
pub use protocol::{decode_event, encode_event, CampaignEvent, WireObserver};
pub use registry::EstimatorRegistry;
pub use runner::{ResumeEstimatorReport, ResumeReport, ShardCoverage, SweepOutcome};
pub use shard::{merge_event_streams, shard_of, ShardOutcome};
pub use sink::{
    summarize, CsvSink, JsonlSink, Reorderer, ResultSink, SummaryRow, SweepRow, VecSink,
};
pub use spec::{parse_toml, DagInstance, DagSpec, SweepSpec};
pub use spool::{SharedFs, SpoolSummary, SpoolWorker};
pub use telemetry::{
    MetricsReport, MetricsSnapshot, SpanGuard, SpanStat, Telemetry, TelemetrySink,
};
// Re-exported so embedders can construct typed specs without adding a
// stochdag-core dependency.
pub use stochdag_core::EstimatorSpec;
// Re-exported so embedders can describe correlated-failure sweeps and
// inspect scenario support without depending on stochdag-workload or
// stochdag-core directly.
pub use stochdag_core::{ScenarioModel, UnsupportedScenario};
pub use stochdag_workload::ScenarioSpec;
