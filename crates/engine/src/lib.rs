//! # stochdag-engine — parallel scenario-sweep engine
//!
//! The paper's evaluation is a *campaign*: estimator accuracy measured
//! over grids of (DAG family, size, failure probability) against a
//! Monte-Carlo ground truth. This crate turns that pattern into a
//! declarative, parallel, cached subsystem:
//!
//! * [`EstimatorRegistry`] — every estimator in `stochdag-core` behind
//!   an object-safe, name-addressable handle (`"first-order"`,
//!   `"dodin:64"`, `"mc:10000"`, …).
//! * [`SweepSpec`] — the Cartesian product of DAG sources × failure
//!   models × estimators, loadable from TOML or JSON.
//! * [`run_sweep`] — a work-stealing parallel executor with
//!   deterministic per-cell seeding and a content-addressed
//!   [`ResultCache`] (in-memory + on-disk), so repeated or resumed
//!   campaigns skip every finished cell.
//! * [`CsvSink`] / [`JsonlSink`] — streaming sinks fed in
//!   deterministic order with relative-error-vs-MC rows and a
//!   per-estimator summary; re-runs produce byte-identical files.
//!
//! ## Quickstart
//!
//! ```
//! use stochdag_engine::{
//!     run_sweep, EstimatorRegistry, ResultCache, ResultSink, SweepSpec, VecSink,
//! };
//!
//! let spec = SweepSpec::from_str_auto(r#"
//!     name = "doc"
//!     pfails = [0.01]
//!     estimators = ["first-order", "sculli"]
//!     reference_trials = 500
//!     [[dags]]
//!     kind = "cholesky"
//!     ks = [2]
//! "#).unwrap();
//!
//! let registry = EstimatorRegistry::standard();
//! let cache = ResultCache::in_memory();
//! let mut sink = VecSink::default();
//! let outcome = {
//!     let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut sink];
//!     run_sweep(&spec, &registry, &cache, &mut sinks).unwrap()
//! };
//! assert_eq!(outcome.cells, 2); // 1 DAG × 1 pfail × 2 estimators
//! assert!(outcome.rows.iter().all(|r| r.rel_error.abs() < 0.2));
//!
//! // Re-running the same spec is served entirely from the cache.
//! let again = {
//!     let mut sinks: Vec<&mut dyn ResultSink> = vec![];
//!     run_sweep(&spec, &registry, &cache, &mut sinks).unwrap()
//! };
//! assert!(again.fully_cached());
//! assert_eq!(again.rows, outcome.rows);
//! ```

//!
//! ## Distributed campaigns
//!
//! Cells can also be executed by **multiple worker processes** sharing
//! one on-disk cache: [`shard_of`] deterministically partitions the
//! cell list by cache key, [`run_shard`] executes one shard and streams
//! [`WorkerEvent`]s (line-delimited JSON), and [`coordinate`] merges
//! the event streams back into ordered sink output that is
//! byte-identical to a single-process run over the same cache — with
//! live progress/ETA rendered by a [`ProgressReporter`]. See the
//! [`shard`](crate::shard_of) and [`protocol`](crate::WorkerEvent)
//! docs; the `stochdag sweep --workers N` CLI drives the whole loop.

mod cache;
mod keys;
mod progress;
mod protocol;
mod registry;
mod runner;
mod shard;
mod sink;
mod spec;

pub use cache::{cell_key, CacheGcStats, ResultCache};
pub use keys::StableHasher;
pub use progress::{ProgressMode, ProgressReporter};
pub use protocol::{decode_event, encode_event, WorkerEvent};
pub use registry::{BuildContext, EstimatorRegistry};
pub use runner::{
    resume_report, run_sweep, sharded_resume_report, ResumeEstimatorReport, ResumeReport,
    ShardCoverage, SweepOutcome,
};
pub use shard::{coordinate, run_shard, shard_of, ShardOutcome};
pub use sink::{
    summarize, CsvSink, JsonlSink, Reorderer, ResultSink, SummaryRow, SweepRow, VecSink,
};
pub use spec::{parse_toml, DagInstance, DagSpec, SweepSpec};
