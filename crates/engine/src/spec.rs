//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] is the Cartesian product the engine expands:
//! **DAG sources** (factorization families across tile counts,
//! synthetic families, task-graph files) × **failure models** (paper
//! style calibrated `pfails` and/or raw `lambdas`) × **estimators**
//! (registry spec strings). One Monte-Carlo reference per (DAG, model)
//! scenario anchors the relative-error columns.
//!
//! Specs load from TOML (a self-contained subset: scalars, arrays of
//! scalars, `[table]`, `[[array-of-tables]]`) or JSON; both parse into
//! the same [`serde::Value`] tree.

use crate::error::EngineError;
use serde::{Deserialize, Serialize, Value};
use stochdag_core::{EstimatorSpec, SamplingModel};
use stochdag_dag::{structural_hash, Dag};
use stochdag_taskgraphs::{
    diamond_mesh_dag, erdos_renyi_dag, fork_join_dag, layered_random_dag, FactorizationClass,
    KernelTimings, LayeredConfig,
};
use stochdag_workload::{load_dot, load_trace_json, IngestedTrace, ScenarioSpec};

/// One concrete DAG produced from a [`DagSpec`].
pub struct DagInstance {
    /// Stable human-readable id (e.g. `"lu:k=8"`), used in result rows.
    pub id: String,
    /// The graph.
    pub dag: Dag,
}

/// A DAG source in the sweep's first axis.
#[derive(Clone, Debug, PartialEq)]
pub enum DagSpec {
    /// Paper factorization workloads across tile counts.
    Factorization {
        /// Cholesky, LU, or QR.
        class: FactorizationClass,
        /// Tile counts `k` (one DAG per entry).
        ks: Vec<usize>,
    },
    /// Random layered DAG (the classical scheduling benchmark shape).
    Layered {
        /// Layer counts (one DAG per entry).
        layers: Vec<usize>,
        /// Tasks per layer.
        width: usize,
        /// Inter-layer edge probability.
        edge_prob: f64,
        /// Weight range.
        weight_range: (f64, f64),
        /// Generator seed.
        seed: u64,
    },
    /// Erdős–Rényi DAG over forward pairs.
    ErdosRenyi {
        /// Task counts (one DAG per entry).
        ns: Vec<usize>,
        /// Edge probability.
        p: f64,
        /// Weight range.
        weight_range: (f64, f64),
        /// Generator seed.
        seed: u64,
    },
    /// Fork-join with `width` branches of `depth` tasks.
    ForkJoin {
        /// Branch count.
        width: usize,
        /// Tasks per branch.
        depth: usize,
        /// Uniform task weight.
        weight: f64,
    },
    /// Diamond mesh (grid pipeline; worst case for SP approximations).
    DiamondMesh {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Weight range.
        weight_range: (f64, f64),
        /// Generator seed.
        seed: u64,
    },
    /// A task-graph file in the `stochdag_dag::io` text format.
    File {
        /// Path to the file.
        path: String,
    },
    /// A Graphviz DOT trace (ingested via [`stochdag_workload::load_dot`]).
    ///
    /// The instance id — and with it every cache key — is derived from
    /// the parsed graph's structural hash, not this path: moving or
    /// renaming the file leaves cached cells valid.
    Dot {
        /// Path to the `.dot` file.
        path: String,
    },
    /// A WfCommons-style workflow JSON trace (ingested via
    /// [`stochdag_workload::load_trace_json`]). Content-addressed like
    /// [`DagSpec::Dot`].
    TraceJson {
        /// Path to the `.json` trace.
        path: String,
    },
}

/// Content-addressed instance id of an ingested trace: format, the
/// trace's own workflow name, and 48 bits of the graph's WL structural
/// hash — so the id (and every cache key under it) survives the file
/// moving or being renamed.
fn trace_instance_id(trace: &IngestedTrace) -> String {
    let h = (structural_hash(&trace.dag) as u64) & 0xffff_ffff_ffff;
    format!("{}:{}:{h:012x}", trace.format.id(), trace.name)
}

impl DagSpec {
    /// Expand into concrete DAG instances.
    pub fn materialize(&self) -> Result<Vec<DagInstance>, EngineError> {
        match self {
            DagSpec::Factorization { class, ks } => {
                let t = KernelTimings::paper_default();
                Ok(ks
                    .iter()
                    .map(|&k| DagInstance {
                        id: format!("{}:k={k}", class.name()),
                        dag: class.generate(k, &t),
                    })
                    .collect())
            }
            DagSpec::Layered {
                layers,
                width,
                edge_prob,
                weight_range,
                seed,
            } => Ok(layers
                .iter()
                .map(|&l| DagInstance {
                    id: format!("layered:L{l}xW{width}:seed={seed}"),
                    dag: layered_random_dag(
                        &LayeredConfig {
                            layers: l,
                            width: *width,
                            edge_prob: *edge_prob,
                            weight_range: *weight_range,
                        },
                        *seed,
                    ),
                })
                .collect()),
            DagSpec::ErdosRenyi {
                ns,
                p,
                weight_range,
                seed,
            } => Ok(ns
                .iter()
                .map(|&n| DagInstance {
                    id: format!("erdos-renyi:n={n}:p={p}:seed={seed}"),
                    dag: erdos_renyi_dag(n, *p, *weight_range, *seed),
                })
                .collect()),
            DagSpec::ForkJoin {
                width,
                depth,
                weight,
            } => Ok(vec![DagInstance {
                id: format!("fork-join:{width}x{depth}"),
                dag: fork_join_dag(*width, *depth, *weight),
            }]),
            DagSpec::DiamondMesh {
                rows,
                cols,
                weight_range,
                seed,
            } => Ok(vec![DagInstance {
                id: format!("diamond-mesh:{rows}x{cols}:seed={seed}"),
                dag: diamond_mesh_dag(*rows, *cols, *weight_range, *seed),
            }]),
            DagSpec::File { path } => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| EngineError::io(format!("reading task graph {path}"), e))?;
                let dag = stochdag_dag::io::parse_taskgraph(&text)
                    .map_err(|e| EngineError::spec(format!("parsing task graph {path}: {e}")))?;
                Ok(vec![DagInstance {
                    id: format!("file:{path}"),
                    dag,
                }])
            }
            DagSpec::Dot { path } => {
                let trace = load_dot(std::path::Path::new(path))
                    .map_err(|e| EngineError::spec(format!("ingesting DOT trace {path}: {e}")))?;
                Ok(vec![DagInstance {
                    id: trace_instance_id(&trace),
                    dag: trace.dag,
                }])
            }
            DagSpec::TraceJson { path } => {
                let trace = load_trace_json(std::path::Path::new(path))
                    .map_err(|e| EngineError::spec(format!("ingesting JSON trace {path}: {e}")))?;
                Ok(vec![DagInstance {
                    id: trace_instance_id(&trace),
                    dag: trace.dag,
                }])
            }
        }
    }
}

/// A full sweep campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Campaign name (output file stem).
    pub name: String,
    /// Master seed; every cell derives its own stream from it.
    pub seed: u64,
    /// Calibrated per-task failure probabilities (paper Section V-C).
    pub pfails: Vec<f64>,
    /// Raw error rates λ (an alternative/additional model axis).
    pub lambdas: Vec<f64>,
    /// Typed estimator configurations (string spellings like
    /// `"dodin:64"` parse via [`EstimatorSpec`]'s `FromStr`).
    pub estimators: Vec<EstimatorSpec>,
    /// Trials of the Monte-Carlo reference per scenario.
    pub reference_trials: usize,
    /// Sampling model of the reference.
    pub reference_sampling: SamplingModel,
    /// Worker-thread cap for the campaign (`None` = all cores). Results
    /// are deterministic regardless of this knob; it only bounds
    /// parallelism (the CLI's `--jobs`).
    pub jobs: Option<usize>,
    /// Correlated-failure scenarios crossed with every failure model
    /// (`"iid"`, `"rack:G:q:m"`, `"bursty:W:frac:m:seed"`; see
    /// [`ScenarioSpec`]). Empty means plain i.i.d. failures — and an
    /// explicit `["iid"]` expands to byte-identical cells, so adding
    /// the axis never invalidates an existing cache.
    pub scenarios: Vec<ScenarioSpec>,
    /// DAG sources.
    pub dags: Vec<DagSpec>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            name: "sweep".into(),
            seed: 0,
            pfails: Vec::new(),
            lambdas: Vec::new(),
            estimators: Vec::new(),
            reference_trials: 100_000,
            reference_sampling: SamplingModel::Geometric,
            jobs: None,
            scenarios: Vec::new(),
            dags: Vec::new(),
        }
    }
}

impl SweepSpec {
    /// Structural sanity checks (axes non-empty, probabilities valid).
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.dags.is_empty() {
            return Err(EngineError::spec("spec has no DAG sources"));
        }
        if self.estimators.is_empty() {
            return Err(EngineError::spec("spec has no estimators"));
        }
        for est in &self.estimators {
            est.validate().map_err(EngineError::spec)?;
        }
        if self.pfails.is_empty() && self.lambdas.is_empty() {
            return Err(EngineError::spec("spec has neither pfails nor lambdas"));
        }
        for &p in &self.pfails {
            if !(0.0..1.0).contains(&p) {
                return Err(EngineError::spec(format!("pfail {p} outside [0, 1)")));
            }
        }
        for &l in &self.lambdas {
            if !(l.is_finite() && l >= 0.0) {
                return Err(EngineError::spec(format!(
                    "lambda {l} must be finite and non-negative"
                )));
            }
        }
        if self.reference_trials == 0 {
            return Err(EngineError::spec("reference_trials must be positive"));
        }
        if self.jobs == Some(0) {
            return Err(EngineError::spec("jobs must be positive when set"));
        }
        {
            let mut ids: Vec<String> = Vec::new();
            for s in &self.scenarios {
                s.validate()
                    .map_err(|e| EngineError::spec(format!("scenario {s}: {e}")))?;
                ids.push(s.to_string());
            }
            ids.sort_unstable();
            for pair in ids.windows(2) {
                if pair[0] == pair[1] {
                    return Err(EngineError::spec(format!(
                        "duplicate scenario {:?} in spec",
                        pair[0]
                    )));
                }
            }
        }
        if self.scenarios.iter().any(|s| !s.is_iid()) {
            // Correlated scenarios are exact only for the Monte-Carlo
            // and first-order families; every other estimator would
            // silently answer the i.i.d. question. Fail the spec up
            // front instead of per cell.
            for est in &self.estimators {
                if !matches!(
                    est,
                    EstimatorSpec::Mc { .. }
                        | EstimatorSpec::FirstOrder
                        | EstimatorSpec::FirstOrderNaive
                ) {
                    return Err(EngineError::spec(format!(
                        "estimator {est} does not support correlated failure scenarios \
                         (supported: mc, first-order, first-order-naive)"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Failure-model entries per DAG instance: the base models (pfails
    /// then lambdas) crossed with the scenario axis (an empty
    /// `scenarios` list counts as the single implicit i.i.d. entry).
    /// The single source of truth for every path that sizes the model
    /// axis (plans, shards, dry runs).
    pub fn model_count(&self) -> usize {
        (self.pfails.len() + self.lambdas.len()) * self.scenarios.len().max(1)
    }

    /// Load from a file; TOML unless the content starts with `{`.
    /// Errors name the offending path.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<SweepSpec, EngineError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| EngineError::io(format!("reading spec {}", path.display()), e))?;
        SweepSpec::from_str_auto(&text)
            .map_err(|e| EngineError::spec(format!("spec {}: {e}", path.display())))
    }

    /// Parse from TOML or JSON text (auto-detected).
    pub fn from_str_auto(text: &str) -> Result<SweepSpec, EngineError> {
        let trimmed = text.trim_start();
        let value = if trimmed.starts_with('{') {
            serde::json::parse(text).map_err(|e| EngineError::spec(e.to_string()))?
        } else {
            parse_toml(text)?
        };
        SweepSpec::deserialize(&value).map_err(|e| EngineError::spec(e.to_string()))
    }
}

fn num_field<T: Deserialize>(v: &Value, key: &str, default: T) -> Result<T, serde::Error> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => T::deserialize(x),
    }
}

fn weight_range(v: &Value) -> Result<(f64, f64), serde::Error> {
    let lo = num_field(v, "weight_lo", 0.5)?;
    let hi = num_field(v, "weight_hi", 1.5)?;
    if !(lo >= 0.0 && hi >= lo) {
        return Err(serde::Error::new(format!("bad weight range [{lo}, {hi}]")));
    }
    Ok((lo, hi))
}

impl Deserialize for DagSpec {
    fn deserialize(v: &Value) -> Result<DagSpec, serde::Error> {
        let kind = String::deserialize(v.require("kind")?)?;
        match kind.as_str() {
            "cholesky" | "lu" | "qr" => {
                let class = FactorizationClass::parse(&kind).expect("matched above");
                let ks: Vec<usize> = Vec::deserialize(v.require("ks")?)?;
                if ks.is_empty() || ks.contains(&0) {
                    return Err(serde::Error::new("ks must be non-empty positive tile counts"));
                }
                Ok(DagSpec::Factorization { class, ks })
            }
            "layered" => Ok(DagSpec::Layered {
                layers: Vec::deserialize(v.require("layers")?)?,
                width: num_field(v, "width", 4)?,
                edge_prob: num_field(v, "edge_prob", 0.5)?,
                weight_range: weight_range(v)?,
                seed: num_field(v, "seed", 0u64)?,
            }),
            "erdos-renyi" => Ok(DagSpec::ErdosRenyi {
                ns: Vec::deserialize(v.require("ns")?)?,
                p: num_field(v, "p", 0.2)?,
                weight_range: weight_range(v)?,
                seed: num_field(v, "seed", 0u64)?,
            }),
            "fork-join" => Ok(DagSpec::ForkJoin {
                width: num_field(v, "width", 4)?,
                depth: num_field(v, "depth", 3)?,
                weight: num_field(v, "weight", 1.0)?,
            }),
            "diamond-mesh" => Ok(DagSpec::DiamondMesh {
                rows: num_field(v, "rows", 4)?,
                cols: num_field(v, "cols", 4)?,
                weight_range: weight_range(v)?,
                seed: num_field(v, "seed", 0u64)?,
            }),
            "file" => Ok(DagSpec::File {
                path: String::deserialize(v.require("path")?)?,
            }),
            "dot" => Ok(DagSpec::Dot {
                path: String::deserialize(v.require("path")?)?,
            }),
            "trace-json" => Ok(DagSpec::TraceJson {
                path: String::deserialize(v.require("path")?)?,
            }),
            other => Err(serde::Error::new(format!(
                "unknown DAG kind {other:?} (cholesky|lu|qr|layered|erdos-renyi|fork-join|diamond-mesh|file|dot|trace-json)"
            ))),
        }
    }
}

impl Serialize for DagSpec {
    fn serialize(&self) -> Value {
        match self {
            DagSpec::Factorization { class, ks } => Value::obj([
                ("kind", Value::Str(class.name().into())),
                ("ks", ks.serialize()),
            ]),
            DagSpec::Layered {
                layers,
                width,
                edge_prob,
                weight_range,
                seed,
            } => Value::obj([
                ("kind", Value::Str("layered".into())),
                ("layers", layers.serialize()),
                ("width", width.serialize()),
                ("edge_prob", edge_prob.serialize()),
                ("weight_lo", weight_range.0.serialize()),
                ("weight_hi", weight_range.1.serialize()),
                ("seed", seed.serialize()),
            ]),
            DagSpec::ErdosRenyi {
                ns,
                p,
                weight_range,
                seed,
            } => Value::obj([
                ("kind", Value::Str("erdos-renyi".into())),
                ("ns", ns.serialize()),
                ("p", p.serialize()),
                ("weight_lo", weight_range.0.serialize()),
                ("weight_hi", weight_range.1.serialize()),
                ("seed", seed.serialize()),
            ]),
            DagSpec::ForkJoin {
                width,
                depth,
                weight,
            } => Value::obj([
                ("kind", Value::Str("fork-join".into())),
                ("width", width.serialize()),
                ("depth", depth.serialize()),
                ("weight", weight.serialize()),
            ]),
            DagSpec::DiamondMesh {
                rows,
                cols,
                weight_range,
                seed,
            } => Value::obj([
                ("kind", Value::Str("diamond-mesh".into())),
                ("rows", rows.serialize()),
                ("cols", cols.serialize()),
                ("weight_lo", weight_range.0.serialize()),
                ("weight_hi", weight_range.1.serialize()),
                ("seed", seed.serialize()),
            ]),
            DagSpec::File { path } => Value::obj([
                ("kind", Value::Str("file".into())),
                ("path", path.serialize()),
            ]),
            DagSpec::Dot { path } => Value::obj([
                ("kind", Value::Str("dot".into())),
                ("path", path.serialize()),
            ]),
            DagSpec::TraceJson { path } => Value::obj([
                ("kind", Value::Str("trace-json".into())),
                ("path", path.serialize()),
            ]),
        }
    }
}

impl Deserialize for SweepSpec {
    fn deserialize(v: &Value) -> Result<SweepSpec, serde::Error> {
        let defaults = SweepSpec::default();
        let sampling = match v.get("reference_sampling").and_then(Value::as_str) {
            None => defaults.reference_sampling,
            Some("geometric") => SamplingModel::Geometric,
            Some("two-state") => SamplingModel::TwoState,
            Some(other) => {
                return Err(serde::Error::new(format!(
                    "unknown reference_sampling {other:?} (geometric|two-state)"
                )))
            }
        };
        Ok(SweepSpec {
            name: match v.get("name") {
                None => defaults.name,
                Some(n) => String::deserialize(n)?,
            },
            seed: num_field(v, "seed", defaults.seed)?,
            pfails: match v.get("pfails") {
                None => Vec::new(),
                Some(p) => Vec::deserialize(p)?,
            },
            lambdas: match v.get("lambdas") {
                None => Vec::new(),
                Some(l) => Vec::deserialize(l)?,
            },
            estimators: Vec::deserialize(v.require("estimators")?)?,
            reference_trials: num_field(v, "reference_trials", defaults.reference_trials)?,
            reference_sampling: sampling,
            jobs: match v.get("jobs") {
                None => None,
                Some(j) => Some(usize::deserialize(j)?),
            },
            scenarios: match v.get("scenarios") {
                None => Vec::new(),
                Some(s) => Vec::deserialize(s)?,
            },
            dags: Vec::deserialize(v.require("dags")?)?,
        })
    }
}

impl Serialize for SweepSpec {
    fn serialize(&self) -> Value {
        let mut pairs = vec![
            ("name", self.name.serialize()),
            ("seed", self.seed.serialize()),
            ("pfails", self.pfails.serialize()),
            ("lambdas", self.lambdas.serialize()),
            ("estimators", self.estimators.serialize()),
            ("reference_trials", self.reference_trials.serialize()),
            (
                "reference_sampling",
                Value::Str(
                    match self.reference_sampling {
                        SamplingModel::Geometric => "geometric",
                        SamplingModel::TwoState => "two-state",
                    }
                    .into(),
                ),
            ),
            ("dags", self.dags.serialize()),
        ];
        if let Some(jobs) = self.jobs {
            pairs.push(("jobs", jobs.serialize()));
        }
        if !self.scenarios.is_empty() {
            pairs.push(("scenarios", self.scenarios.serialize()));
        }
        Value::obj(pairs)
    }
}

/// Parse the TOML subset sweep specs use (see module docs).
pub fn parse_toml(text: &str) -> Result<Value, EngineError> {
    parse_toml_inner(text).map_err(EngineError::spec)
}

fn parse_toml_inner(text: &str) -> Result<Value, String> {
    use std::collections::BTreeMap;
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // Path of the table currently being filled; `None` = root.
    let mut current: Option<(String, bool)> = None; // (key, is_array_elem)

    fn insert(
        root: &mut BTreeMap<String, Value>,
        current: &Option<(String, bool)>,
        key: String,
        val: Value,
        line_no: usize,
    ) -> Result<(), String> {
        let target = match current {
            None => root,
            Some((table, is_array)) => {
                let entry = root
                    .get_mut(table)
                    .expect("table created when the header was seen");
                let obj = if *is_array {
                    match entry {
                        Value::Arr(items) => items.last_mut().expect("non-empty"),
                        _ => unreachable!("array tables stay arrays"),
                    }
                } else {
                    entry
                };
                match obj {
                    Value::Obj(m) => {
                        if m.contains_key(&key) {
                            return Err(format!("line {line_no}: duplicate key {key:?}"));
                        }
                        m.insert(key, val);
                        return Ok(());
                    }
                    _ => unreachable!("tables are objects"),
                }
            }
        };
        if target.contains_key(&key) {
            return Err(format!("line {line_no}: duplicate key {key:?}"));
        }
        target.insert(key, val);
        Ok(())
    }

    for (no, raw) in text.lines().enumerate() {
        let line_no = no + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let name = name.trim().to_string();
            match root
                .entry(name.clone())
                .or_insert_with(|| Value::Arr(Vec::new()))
            {
                Value::Arr(items) => items.push(Value::Obj(BTreeMap::new())),
                _ => {
                    return Err(format!(
                        "line {line_no}: {name:?} is not an array of tables"
                    ))
                }
            }
            current = Some((name, true));
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim().to_string();
            if root.contains_key(&name) {
                return Err(format!("line {line_no}: duplicate table {name:?}"));
            }
            root.insert(name.clone(), Value::Obj(BTreeMap::new()));
            current = Some((name, false));
            continue;
        }
        let Some((key, rest)) = line.split_once('=') else {
            return Err(format!("line {line_no}: expected `key = value`"));
        };
        let key = key.trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!("line {line_no}: bad key {key:?}"));
        }
        let val = parse_scalar_or_array(rest.trim(), line_no)?;
        insert(&mut root, &current, key.to_string(), val, line_no)?;
    }
    Ok(Value::Obj(root))
}

/// Strip a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar_or_array(s: &str, line_no: usize) -> Result<Value, String> {
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("line {line_no}: unterminated array"))?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_scalar(part, line_no)?);
        }
        return Ok(Value::Arr(items));
    }
    parse_scalar(s, line_no)
}

/// Split on commas outside string literals.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

fn parse_scalar(s: &str, line_no: usize) -> Result<Value, String> {
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("line {line_no}: unterminated string"))?;
        if body.contains('"') {
            return Err(format!("line {line_no}: embedded quote in {s:?}"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    s.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("line {line_no}: cannot parse value {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a mini campaign
name = "mini"
seed = 42
pfails = [0.01, 0.001]
estimators = ["first-order", "sculli", "dodin:64"]
reference_trials = 5000
reference_sampling = "two-state"

[[dags]]
kind = "cholesky"
ks = [2, 3, 4]

[[dags]]
kind = "lu"
ks = [2, 3]

[[dags]]
kind = "layered"
layers = [4]
width = 3
edge_prob = 0.5
seed = 7
"#;

    #[test]
    fn toml_spec_parses() {
        let spec = SweepSpec::from_str_auto(SAMPLE).unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.pfails, vec![0.01, 0.001]);
        assert_eq!(spec.estimators.len(), 3);
        assert_eq!(spec.reference_trials, 5000);
        assert_eq!(
            spec.reference_sampling,
            stochdag_core::SamplingModel::TwoState
        );
        assert_eq!(spec.dags.len(), 3);
        spec.validate().unwrap();
    }

    #[test]
    fn json_round_trip_equals_toml() {
        let spec = SweepSpec::from_str_auto(SAMPLE).unwrap();
        let json = serde::json::to_string(&spec);
        let back = SweepSpec::from_str_auto(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn materialization_counts() {
        let spec = SweepSpec::from_str_auto(SAMPLE).unwrap();
        let mut instances = Vec::new();
        for d in &spec.dags {
            instances.extend(d.materialize().unwrap());
        }
        assert_eq!(instances.len(), 3 + 2 + 1);
        assert_eq!(instances[0].id, "cholesky:k=2");
        assert!(instances.iter().all(|i| i.dag.node_count() > 0));
    }

    #[test]
    fn validation_catches_empty_axes() {
        let mut spec = SweepSpec::from_str_auto(SAMPLE).unwrap();
        spec.pfails.clear();
        assert!(spec.validate().is_err());
        spec.lambdas = vec![0.05];
        spec.validate().unwrap();
        spec.estimators.clear();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(
            SweepSpec::from_str_auto("estimators = [\"x\"]").is_err(),
            "missing dags"
        );
        assert!(parse_toml("key").is_err());
        assert!(parse_toml("k = [1, 2").is_err());
        assert!(parse_toml("k = \"unterminated").is_err());
        assert!(parse_toml("k = 1\nk = 2").is_err());
        let err = SweepSpec::from_str_auto(
            "estimators = [\"sculli\"]\npfails = [0.1]\n[[dags]]\nkind = \"warp\"",
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown DAG kind"), "{err}");
        let err = SweepSpec::from_str_auto(
            "estimators = [\"warp-drive\"]\npfails = [0.1]\n[[dags]]\nkind = \"fork-join\"",
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown estimator"), "{err}");
    }

    #[test]
    fn jobs_round_trip_and_validation() {
        let mut spec = SweepSpec::from_str_auto(SAMPLE).unwrap();
        assert_eq!(spec.jobs, None, "jobs defaults to uncapped");
        spec.jobs = Some(4);
        spec.validate().unwrap();
        let back = SweepSpec::from_str_auto(&serde::json::to_string(&spec)).unwrap();
        assert_eq!(back.jobs, Some(4));
        spec.jobs = Some(0);
        assert!(spec.validate().is_err(), "jobs = 0 is rejected");
        let toml = SweepSpec::from_str_auto(
            "jobs = 2\nestimators = [\"first-order\"]\npfails = [0.1]\n[[dags]]\nkind = \"fork-join\"",
        )
        .unwrap();
        assert_eq!(toml.jobs, Some(2));
    }

    #[test]
    fn from_file_accepts_path_types_and_names_path_in_errors() {
        let p = std::env::temp_dir().join(format!("stochdag_specfile_{}.toml", std::process::id()));
        std::fs::write(&p, SAMPLE).unwrap();
        let a = SweepSpec::from_file(&p).unwrap(); // &PathBuf
        let b = SweepSpec::from_file(p.to_str().unwrap()).unwrap(); // &str
        assert_eq!(a, b);
        let _ = std::fs::remove_file(&p);
        let missing = p.with_extension("missing");
        let err = SweepSpec::from_file(&missing).unwrap_err().to_string();
        assert!(err.contains(missing.to_str().unwrap()), "{err}");
    }

    #[test]
    fn comments_respect_strings() {
        let v = parse_toml("s = \"a # not comment\" # real comment").unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a # not comment");
    }

    #[test]
    fn file_source_materializes() {
        let path = std::env::temp_dir().join(format!("stochdag_spec_{}.txt", std::process::id()));
        std::fs::write(&path, "task a 1.0\ntask b 2.0\ndep a b\n").unwrap();
        let spec = DagSpec::File {
            path: path.to_str().unwrap().to_string(),
        };
        let inst = spec.materialize().unwrap();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].dag.node_count(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
