//! Cooperative cancellation for running campaigns.
//!
//! A [`CancelToken`] is a cloneable flag shared between whoever owns a
//! running [`Campaign`](crate::Campaign) (a serve daemon, an embedding
//! UI, a signal handler) and the execution machinery. Cancellation is
//! **cooperative**: the shard executor checks the token between cells,
//! never mid-cell, so every cell that started finishes and lands in
//! the shared [`ResultCache`](crate::ResultCache). A cancelled run
//! fails with [`EngineError::Cancelled`](crate::EngineError) — and
//! because completed cells are cached, re-submitting the same spec
//! over the same cache resumes where the cancelled run stopped.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation flag checked cooperatively between cells.
///
/// All clones share one flag: [`cancel`](CancelToken::cancel) on any
/// clone is observed by every other. The flag is sticky — there is no
/// un-cancel. Checking is a single relaxed atomic load, cheap enough
/// for per-cell polling.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested (on any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
        c.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
    }
}
