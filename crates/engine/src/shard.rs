//! Deterministic cell sharding and the worker-side shard executor.
//!
//! A sweep's cells are embarrassingly parallel and content-addressed,
//! so distributing them needs no scheduler state: every process can
//! derive the **same** deterministic partition from the spec alone.
//! [`shard_of`] assigns each cell to a shard by stable-hashing its
//! cache key — relabeling-invariant, machine-independent, and balanced
//! across shards without coordination.
//!
//! The worker half ([`execute_shard`], surfaced as
//! [`Campaign::run_shard`](crate::Campaign::run_shard)) executes
//! exactly the cells assigned to one shard (plus the Monte-Carlo
//! references those cells need), cache-first against the shared
//! on-disk [`ResultCache`], and reports one [`CampaignEvent`] per
//! completion. The coordinator half lives in the
//! [`Campaign`](crate::Campaign) core (the [`MultiProcess`]
//! backend + event merge); [`merge_event_streams`] merges *replayed*
//! event streams (captured worker stdout, archived logs) through the
//! same re-sequencing machinery.
//!
//! Workers share results only through the content-addressed cache: a
//! reference scenario touched by cells on two shards is looked up by
//! both, computed by whichever misses first, and (being seeded
//! deterministically) is bit-identical no matter which worker computed
//! it.
//!
//! [`MultiProcess`]: crate::MultiProcess

use crate::cache::{cell_key, ResultCache};
use crate::campaign::Merge;
use crate::cancel::CancelToken;
use crate::error::EngineError;
use crate::keys::StableHasher;
use crate::progress::ProgressReporter;
use crate::protocol::{decode_event, CampaignEvent};
use crate::registry::EstimatorRegistry;
use crate::runner::{
    apply_jobs_cap, cell_index, derive_seed, evaluate_unit, expand, make_row, Expansion,
    SweepOutcome,
};
use crate::sink::{summarize, ResultSink};
use crate::spec::SweepSpec;
use crate::telemetry::Telemetry;
use rayon::prelude::*;
use std::io::BufRead;
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};
use stochdag_core::{Estimate, Estimator, MonteCarloEstimator, PreparedEstimator};
use stochdag_dag::{structural_hash, PreparedDag};

/// Deterministic shard assignment of a cell: stable-hash its cache key,
/// reduce modulo the shard count. Every process derives the identical
/// partition from the spec alone; no shard list ever crosses the wire.
pub fn shard_of(key: &str, shard_count: usize) -> usize {
    debug_assert!(shard_count > 0, "shard_count must be positive");
    let mut h = StableHasher::new("stochdag-shard");
    h.write_str(key);
    (h.finish() % shard_count as u128) as usize
}

/// Outcome of one worker's shard execution.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// Shard index this worker executed (0-based).
    pub shard: usize,
    /// Total shard count of the campaign.
    pub shard_count: usize,
    /// Estimator cells assigned to (and completed by) this shard.
    pub cells: usize,
    /// Reference scenarios this shard needed.
    pub references: usize,
    /// Cache hits across this shard's references + cells.
    pub cache_hits: usize,
    /// Cache misses (computed fresh).
    pub cache_misses: usize,
    /// Wall-clock time of the shard.
    pub wall: Duration,
}

/// Execute one shard of a campaign (the body behind
/// [`Campaign::run_shard`](crate::Campaign::run_shard) and the
/// [`InProcess`](crate::InProcess) backend, which runs shard 0 of 1).
///
/// Expands the spec exactly as every other path does, keeps only the
/// cells [`shard_of`] assigns to `shard`, and runs them grouped by
/// (instance × estimator) with the same lazy
/// one-preparation-per-group strategy throughout. Only DAG instances
/// owning at least one assigned cell are frozen into [`PreparedDag`]s.
///
/// `emit` receives every event in completion order ([`Hello`] first,
/// [`Done`] last on success) and must be callable from worker threads.
/// An `emit` error aborts the shard.
///
/// `cancel` is polled between cells (never mid-cell): once set, no new
/// reference or cell starts, in-flight cells finish into the cache,
/// and the shard fails with [`EngineError::Cancelled`]. A pre-cancelled
/// token fails the shard before any work.
///
/// Telemetry is collected into a shard-local [`Telemetry::child`] of
/// `telemetry` and reported as one [`CampaignEvent::Telemetry`] just
/// before [`Done`] — the same mechanism whether this shard runs inside
/// the coordinator process or behind a pipe in a worker process.
///
/// [`Hello`]: CampaignEvent::Hello
/// [`Done`]: CampaignEvent::Done
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_shard(
    spec: &SweepSpec,
    registry: &EstimatorRegistry,
    cache: &ResultCache,
    telemetry: &Telemetry,
    cancel: &CancelToken,
    shard: usize,
    shard_count: usize,
    emit: &(dyn Fn(CampaignEvent) -> Result<(), EngineError> + Sync),
) -> Result<ShardOutcome, EngineError> {
    let start = Instant::now();
    if shard_count == 0 {
        return Err(EngineError::spec("shard count must be positive"));
    }
    if cancel.is_cancelled() {
        return Err(EngineError::cancelled());
    }
    if shard >= shard_count {
        return Err(EngineError::spec(format!(
            "shard {shard} out of range (of {shard_count})"
        )));
    }
    let Expansion {
        estimator_ids,
        instances,
        models,
        reference_id,
    } = expand(spec, registry)?;
    let _jobs_cap = apply_jobs_cap(spec.jobs)?;
    cache.reset_counters();
    let tel = telemetry.child();

    let n_inst = instances.len();
    let m_count = spec.model_count();
    let e_count = estimator_ids.len();
    let hashes: Vec<u128> = instances.iter().map(|i| structural_hash(&i.dag)).collect();

    // Deterministic partition: per (instance × estimator) group, the
    // list of owned model indices with their global cell index, seed,
    // and key; plus the reference scenarios those cells need.
    let mut owned: Vec<Vec<(usize, usize, u64, String)>> = vec![Vec::new(); n_inst * e_count];
    let mut scenario_needed: Vec<Vec<bool>> = vec![vec![false; m_count]; n_inst];
    let mut n_cells = 0usize;
    for i in 0..n_inst {
        for (m, entry) in models[i].iter().enumerate() {
            for (e, (_, canonical)) in estimator_ids.iter().enumerate() {
                let unit = entry.unit(canonical);
                let seed = derive_seed(spec.seed, hashes[i], entry.model.lambda, &unit);
                let key = cell_key(hashes[i], entry.model.lambda, &unit, seed);
                if shard_of(&key, shard_count) == shard {
                    owned[i * e_count + e].push((
                        m,
                        cell_index(i, m, e, m_count, e_count),
                        seed,
                        key,
                    ));
                    scenario_needed[i][m] = true;
                    n_cells += 1;
                }
            }
        }
    }
    let n_refs: usize = scenario_needed
        .iter()
        .map(|s| s.iter().filter(|&&b| b).count())
        .sum();

    // Freeze only the instances this shard touches.
    let prepared: Vec<(String, Option<PreparedDag>)> = instances
        .into_iter()
        .enumerate()
        .map(|(i, inst)| {
            let touched = scenario_needed[i].iter().any(|&b| b);
            (
                inst.id,
                touched.then(|| {
                    let _freeze = tel.span("prepare_dag");
                    PreparedDag::new(inst.dag)
                }),
            )
        })
        .collect();

    emit(CampaignEvent::Hello {
        shard,
        shard_count,
        cells: n_cells,
        references: n_refs,
        version: None,
        jobs: None,
    })?;
    // First emit failure wins; later parallel completions still finish
    // (their results land in the cache) but stop reporting.
    let emit_error: Mutex<Option<EngineError>> = Mutex::new(None);
    let send = |ev: CampaignEvent| {
        if let Err(e) = emit(ev) {
            emit_error.lock().expect("emit error slot").get_or_insert(e);
        }
    };

    // Phase 1: the Monte-Carlo references this shard's cells compare
    // against — same grouping and prep-cost attribution everywhere,
    // restricted to needed scenarios. Cache-first: a reference another
    // shard already stored is a hit here.
    let reference_trials = spec.reference_trials;
    let reference_sampling = spec.reference_sampling;
    let references: Vec<Vec<Option<Estimate>>> = (0..n_inst)
        .into_par_iter()
        .map(|i| {
            let mut prep: Option<Box<dyn PreparedEstimator>> = None;
            let mut out: Vec<Option<Estimate>> = vec![None; m_count];
            for (m, entry) in models[i].iter().enumerate() {
                if !scenario_needed[i][m] {
                    continue;
                }
                // Cooperative stop: leave remaining references
                // uncomputed — phase 2 is skipped entirely when the
                // token is set, so nothing reads the gaps.
                if cancel.is_cancelled() {
                    break;
                }
                let pdag = prepared[i].1.as_ref().expect("touched instances frozen");
                let ref_unit = entry.unit(&reference_id);
                let seed = derive_seed(spec.seed, hashes[i], entry.model.lambda, &ref_unit);
                let key = cell_key(hashes[i], entry.model.lambda, &ref_unit, seed);
                let (est, tier) = match evaluate_unit(
                    &tel,
                    cache,
                    &key,
                    seed,
                    &entry.model,
                    &entry.scenario,
                    &mut prep,
                    || {
                        MonteCarloEstimator::new(reference_trials)
                            .with_sampling(reference_sampling)
                            .prepare(pdag)
                    },
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        emit_error.lock().expect("emit error slot").get_or_insert(e);
                        break;
                    }
                };
                tel.count_lookup("references", tier);
                let cached = tier.is_some();
                out[m] = Some(est);
                send(CampaignEvent::Reference {
                    cached,
                    scenario: None,
                });
            }
            out
        })
        .collect();
    if let Some(e) = emit_error.lock().expect("emit error slot").take() {
        return Err(e);
    }
    // Cancelled during phase 1: some references were skipped, so
    // phase 2 must not run (it would read the gaps). The cells and
    // references already finished are in the cache.
    if cancel.is_cancelled() {
        return Err(EngineError::cancelled());
    }

    // Phase 2: assigned estimator cells, one parallel work unit per
    // non-empty (instance × estimator) group.
    (0..n_inst * e_count).into_par_iter().for_each(|unit| {
        let cells = &owned[unit];
        if cells.is_empty() || cancel.is_cancelled() {
            return;
        }
        let i = unit / e_count;
        let e = unit % e_count;
        let (id, pdag) = &prepared[i];
        let pdag = pdag.as_ref().expect("touched instances frozen");
        let (est_spec, canonical) = &estimator_ids[e];
        let mut prep: Option<Box<dyn PreparedEstimator>> = None;
        for &(m, cell, seed, ref key) in cells {
            if cancel.is_cancelled() {
                return;
            }
            let entry = &models[i][m];
            let (est, tier) = match evaluate_unit(
                &tel,
                cache,
                key,
                seed,
                &entry.model,
                &entry.scenario,
                &mut prep,
                || {
                    registry
                        .build(est_spec, seed)
                        .expect("estimator specs validated before launch")
                        .prepare(pdag)
                },
            ) {
                Ok(r) => r,
                Err(e) => {
                    emit_error.lock().expect("emit error slot").get_or_insert(e);
                    return;
                }
            };
            tel.count_lookup("cells", tier);
            let reference = references[i][m]
                .as_ref()
                .expect("needed scenarios computed");
            let row = make_row(
                id,
                pdag,
                &entry.label,
                &entry.model,
                canonical,
                &est,
                reference,
                seed,
            );
            send(CampaignEvent::Cell {
                index: cell,
                cached: tier.is_some(),
                tier,
                row,
            });
        }
    });
    if let Some(e) = emit_error.lock().expect("emit error slot").take() {
        return Err(e);
    }
    if cancel.is_cancelled() {
        return Err(EngineError::cancelled());
    }

    let outcome = ShardOutcome {
        shard,
        shard_count,
        cells: n_cells,
        references: n_refs,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        wall: start.elapsed(),
    };
    if tel.is_enabled() {
        // The shard span reuses the wall clock already measured for the
        // outcome — enabling telemetry adds no extra timing here.
        tel.record_span_duration("worker_shard", outcome.wall);
        emit(CampaignEvent::Telemetry {
            shard,
            snapshot: tel.snapshot(),
        })?;
    }
    emit(CampaignEvent::Done {
        hits: outcome.cache_hits,
        misses: outcome.cache_misses,
        wall_s: outcome.wall.as_secs_f64(),
    })?;
    Ok(outcome)
}

/// Merge N worker event streams into ordered sink output.
///
/// A [`Campaign`](crate::Campaign) with the
/// [`MultiProcess`](crate::MultiProcess) backend does this — plus
/// worker lifecycle and crash retry — in one call; this entry point
/// exists for *replayed* streams: captured worker stdout, archived
/// event logs, spliced protocol fixtures.
///
/// Each reader is one worker's stdout (or a replayed event log). Rows
/// arrive tagged with their global cell index and are re-sequenced, so
/// the sinks observe the exact same ordered row stream — and therefore
/// write the exact same bytes — as an in-process run over the same
/// cache. Progress events feed `progress` as they arrive.
///
/// Fails if any stream reports [`CampaignEvent::Error`], is malformed,
/// ends before its [`CampaignEvent::Done`], or if the merged rows do
/// not cover every announced cell exactly once.
pub fn merge_event_streams<R: BufRead + Send>(
    workers: Vec<R>,
    sinks: &mut [&mut dyn ResultSink],
    progress: &mut ProgressReporter,
) -> Result<SweepOutcome, EngineError> {
    let start = Instant::now();
    if workers.is_empty() {
        return Err(EngineError::worker(
            None,
            "distributed sweep needs at least one worker",
        ));
    }
    let n_workers = workers.len();
    for sink in sinks.iter_mut() {
        sink.begin()
            .map_err(|e| EngineError::sink(None, format!("sink begin: {e}")))?;
    }

    // Strict merge: replayed streams have no retry semantics, so any
    // repeated or overlapping delivery is a protocol violation.
    let mut merge = Merge::new(false);
    let (tx, rx) = mpsc::channel::<(usize, Result<CampaignEvent, String>)>();
    std::thread::scope(|scope| {
        for (w, reader) in workers.into_iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                // After a corrupt line the stream is untrusted, but it
                // is still drained to EOF: closing the pipe early would
                // kill a live worker mid-write (EPIPE) instead of
                // letting it finish its shard — whose results are in
                // the shared cache regardless — and exit cleanly.
                let mut corrupt = false;
                for line in reader.lines() {
                    let Ok(line) = line else {
                        // Pipe torn down mid-stream; the worker is
                        // gone and the completeness checks will fail.
                        let _ = tx.send((w, Err(format!("worker {w} stream broke mid-read"))));
                        return;
                    };
                    if corrupt {
                        continue;
                    }
                    let event = decode_event(&line);
                    corrupt = event.is_err();
                    if tx.send((w, event)).is_err() {
                        return; // coordinator stopped listening
                    }
                }
            });
        }
        drop(tx);

        for (w, event) in rx {
            match event {
                Ok(ev) => {
                    progress.observe(&ev);
                    merge.observe(w, ev, sinks);
                }
                Err(e) => merge.record_error(EngineError::worker(None, e)),
            }
        }
    });
    progress.finish();

    let merged = merge.finalize(n_workers)?;
    let summary = summarize(&merged.rows);
    for sink in sinks.iter_mut() {
        sink.summary(&summary)
            .and_then(|()| sink.finish())
            .map_err(|e| EngineError::sink(None, format!("sink summary: {e}")))?;
    }
    Ok(SweepOutcome {
        cells: merged.cells,
        references: merged.references,
        cache_hits: merged.cache_hits,
        cache_misses: merged.cache_misses,
        cells_computed: merged.cells_computed,
        cells_memory_hits: merged.cells_memory_hits,
        cells_disk_hits: merged.cells_disk_hits,
        wall: start.elapsed(),
        rows: merged.rows,
        summary,
    })
}
