//! In-tree telemetry: spans, counters, and machine-readable campaign
//! metrics — the observability substrate of the engine.
//!
//! The build container is offline, so (following the `crates/shims/`
//! precedent) this is a tiny dependency-free span/counter core instead
//! of the `tracing` crate: a [`Telemetry`] handle is either *disabled*
//! (the default — every operation is a branch on a `None`, no clock
//! reads, no locks, no allocation) or *enabled* (aggregating span
//! durations and counters behind mutexes, optionally streaming each
//! record to a [`TelemetrySink`]).
//!
//! ## Span glossary
//!
//! | span | where | meaning |
//! |------|-------|---------|
//! | `campaign` | coordinator | whole campaign, build of the report |
//! | `worker_shard` | shard executor | one shard start-to-done |
//! | `prepare_dag` | shard executor | freezing one `PreparedDag` |
//! | `prepare_estimator` | cell evaluator | one lazy group preparation |
//! | `estimate_cell` | cell evaluator | one estimate computation |
//! | `cache_probe` | cell evaluator | one cache lookup (any tier) |
//! | `sink_flush` | coordinator | summary + finish of every sink |
//! | `queue_wait` | coordinator | time blocked on the event channel |
//!
//! ## How metrics flow
//!
//! Each shard executor collects into a [`Telemetry::child`] of the
//! campaign handle and reports its aggregate as a
//! [`CampaignEvent::Telemetry`](crate::CampaignEvent) just before its
//! `done` event — in-process via the ordinary delivery callback, in a
//! worker process as one wire line. The campaign core merges every
//! shard snapshot (once per shard, retry-safe) into the campaign
//! handle, which also records the coordinator-side spans. The merged
//! result becomes a [`MetricsReport`] (`sweep --metrics-out`), split
//! into a **stable** section (backend-invariant, timestamp-free —
//! snapshot-testable bytes) and a **detail** section (timings,
//! per-phase aggregates, worker bookkeeping).

use crate::cache::CacheTier;
use crate::runner::SweepOutcome;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Schema version of [`MetricsReport::to_json`] output.
const METRICS_SCHEMA_VERSION: u64 = 1;

/// Receives every finished span and counter increment of an enabled
/// [`Telemetry`] handle, as it happens.
///
/// This trait is the **exporter seam**: when networked builds exist, an
/// OTLP (or `tracing`-subscriber) exporter slots in here — implement
/// `TelemetrySink` over the exporter's client, hand it to
/// [`Telemetry::with_sink`], and every span/counter the engine records
/// streams out without touching any instrumentation site. The built-in
/// implementation is the JSONL trace writer behind
/// `sweep --trace-out` ([`Telemetry::with_trace`]).
///
/// Sinks observe records in completion order from whatever thread
/// finished the work; aggregation (if any) is the sink's business —
/// the engine's own aggregates are kept independently and are always
/// available via [`Telemetry::snapshot`].
pub trait TelemetrySink: Send {
    /// One span finished: `name` took `nanos` nanoseconds.
    fn record_span(&mut self, name: &str, nanos: u64);

    /// One counter increment: `name` grew by `delta`.
    fn record_counter(&mut self, name: &str, delta: u64);
}

/// Render a raw [`Value`] tree as compact JSON (the shim's
/// `json::to_string` wants a `Serialize` type, not a `Value`).
fn value_json(v: &Value) -> String {
    let mut out = String::new();
    serde::json::write_value(v, &mut out);
    out
}

/// Built-in [`TelemetrySink`]: one JSON object per line —
/// `{"span":NAME,"ns":N}` / `{"counter":NAME,"delta":N}` — flushed per
/// record so a live `tail -f` (or a coordinator reading a pipe) sees
/// spans as they finish.
struct JsonlTrace<W: Write + Send>(W);

impl<W: Write + Send> TelemetrySink for JsonlTrace<W> {
    fn record_span(&mut self, name: &str, nanos: u64) {
        let line = value_json(&Value::obj([
            ("span", Value::Str(name.to_string())),
            ("ns", Value::Num(nanos as f64)),
        ]));
        let _ = writeln!(self.0, "{line}").and_then(|()| self.0.flush());
    }

    fn record_counter(&mut self, name: &str, delta: u64) {
        let line = value_json(&Value::obj([
            ("counter", Value::Str(name.to_string())),
            ("delta", Value::Num(delta as f64)),
        ]));
        let _ = writeln!(self.0, "{line}").and_then(|()| self.0.flush());
    }
}

/// Aggregate of one span name: how often it ran and for how long.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completions recorded.
    pub count: u64,
    /// Sum of durations, nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded duration, nanoseconds.
    pub min_ns: u64,
    /// Longest recorded duration, nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    fn add(&mut self, nanos: u64) {
        if self.count == 0 {
            self.min_ns = nanos;
            self.max_ns = nanos;
        } else {
            self.min_ns = self.min_ns.min(nanos);
            self.max_ns = self.max_ns.max(nanos);
        }
        self.count += 1;
        self.total_ns += nanos;
    }

    fn merge(&mut self, other: &SpanStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl Serialize for SpanStat {
    fn serialize(&self) -> Value {
        Value::obj([
            ("count", self.count.serialize()),
            ("total_ns", self.total_ns.serialize()),
            ("min_ns", self.min_ns.serialize()),
            ("max_ns", self.max_ns.serialize()),
        ])
    }
}

impl Deserialize for SpanStat {
    fn deserialize(v: &Value) -> Result<SpanStat, serde::Error> {
        Ok(SpanStat {
            count: u64::deserialize(v.require("count")?)?,
            total_ns: u64::deserialize(v.require("total_ns")?)?,
            min_ns: u64::deserialize(v.require("min_ns")?)?,
            max_ns: u64::deserialize(v.require("max_ns")?)?,
        })
    }
}

/// A point-in-time copy of a [`Telemetry`] collector's aggregates:
/// sorted counters plus per-span statistics. This is what crosses the
/// wire from a worker process to the coordinator
/// ([`CampaignEvent::Telemetry`](crate::CampaignEvent)) and what the
/// detail section of a [`MetricsReport`] renders.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name (sorted).
    pub counters: BTreeMap<String, u64>,
    /// Span aggregates by name (sorted).
    pub spans: BTreeMap<String, SpanStat>,
}

impl MetricsSnapshot {
    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty()
    }
}

impl Serialize for MetricsSnapshot {
    fn serialize(&self) -> Value {
        Value::obj([
            (
                "counters",
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), v.serialize()))
                        .collect(),
                ),
            ),
            (
                "spans",
                Value::Obj(
                    self.spans
                        .iter()
                        .map(|(k, v)| (k.clone(), v.serialize()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for MetricsSnapshot {
    fn deserialize(v: &Value) -> Result<MetricsSnapshot, serde::Error> {
        let obj_entries = |v: &Value| -> Result<Vec<(String, Value)>, serde::Error> {
            match v {
                Value::Obj(m) => Ok(m.iter().map(|(k, v)| (k.clone(), v.clone())).collect()),
                other => Err(serde::Error::new(format!("expected object, got {other:?}"))),
            }
        };
        let mut counters = BTreeMap::new();
        for (k, val) in obj_entries(v.require("counters")?)? {
            counters.insert(k, u64::deserialize(&val)?);
        }
        let mut spans = BTreeMap::new();
        for (k, val) in obj_entries(v.require("spans")?)? {
            spans.insert(k, SpanStat::deserialize(&val)?);
        }
        Ok(MetricsSnapshot { counters, spans })
    }
}

struct Core {
    counters: Mutex<BTreeMap<String, u64>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
    sink: Option<Arc<Mutex<Box<dyn TelemetrySink>>>>,
}

impl Core {
    fn record_span(&self, name: &str, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.spans
            .lock()
            .expect("telemetry spans")
            .entry(name.to_string())
            .or_default()
            .add(nanos);
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("telemetry sink")
                .record_span(name, nanos);
        }
    }

    fn count(&self, name: &str, delta: u64) {
        *self
            .counters
            .lock()
            .expect("telemetry counters")
            .entry(name.to_string())
            .or_insert(0) += delta;
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("telemetry sink")
                .record_counter(name, delta);
        }
    }
}

/// RAII span guard: created by [`Telemetry::span`], records the
/// enclosed duration when dropped. On a disabled handle it is inert —
/// no clock is read on either end.
pub struct SpanGuard<'a> {
    active: Option<(&'a Core, &'static str, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((core, name, t0)) = self.active.take() {
            core.record_span(name, t0.elapsed());
        }
    }
}

/// The telemetry collector handle (see the module docs).
///
/// Cheap to clone (an `Arc` under the hood — clones share one
/// collector) and **zero-cost when disabled**: the default
/// [`Telemetry::disabled`] handle makes every `span`/`count` call a
/// single branch, which is what lets the instrumentation live
/// permanently inside the hot cell-evaluation path.
///
/// Typical embedding:
///
/// ```
/// use stochdag_engine::{Campaign, SweepSpec, Telemetry};
///
/// let spec = SweepSpec::from_str_auto(r#"
///     name = "telemetry-doc"
///     pfails = [0.01]
///     estimators = ["first-order"]
///     reference_trials = 300
///     [[dags]]
///     kind = "cholesky"
///     ks = [2]
/// "#).unwrap();
/// let telemetry = Telemetry::enabled();
/// let outcome = Campaign::builder(spec.clone())
///     .telemetry(telemetry.clone())
///     .build().unwrap()
///     .run().unwrap();
/// let report = telemetry.report(&spec.name, &outcome);
/// assert!(report.to_json().contains("\"estimate_cell\""));
/// ```
#[derive(Clone, Default)]
pub struct Telemetry {
    core: Option<Arc<Core>>,
}

impl Telemetry {
    /// The inert handle: every operation is a no-op (no clock reads,
    /// no locks). This is the default on every campaign.
    pub fn disabled() -> Telemetry {
        Telemetry { core: None }
    }

    /// An enabled collector with no sink (aggregates only).
    pub fn enabled() -> Telemetry {
        Telemetry {
            core: Some(Arc::new(Core {
                counters: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(BTreeMap::new()),
                sink: None,
            })),
        }
    }

    /// An enabled collector streaming every record to `sink` (the
    /// OTLP/`tracing` exporter seam — see [`TelemetrySink`]).
    pub fn with_sink(sink: Box<dyn TelemetrySink>) -> Telemetry {
        Telemetry {
            core: Some(Arc::new(Core {
                counters: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(BTreeMap::new()),
                sink: Some(Arc::new(Mutex::new(sink))),
            })),
        }
    }

    /// An enabled collector streaming a JSONL trace to `writer` —
    /// one `{"span":…,"ns":…}` / `{"counter":…,"delta":…}` object per
    /// line, flushed per record (the engine behind
    /// `sweep --trace-out`).
    pub fn with_trace(writer: Box<dyn Write + Send>) -> Telemetry {
        Telemetry::with_sink(Box::new(JsonlTrace(writer)))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// A child collector: enabled iff `self` is, with **fresh**
    /// aggregates but the **shared** sink. Shard executors collect
    /// into a child so each shard's totals can cross to the
    /// coordinator as one [`MetricsSnapshot`] and be merged exactly
    /// once — identically for in-process and worker-process shards.
    pub fn child(&self) -> Telemetry {
        match &self.core {
            None => Telemetry::disabled(),
            Some(core) => Telemetry {
                core: Some(Arc::new(Core {
                    counters: Mutex::new(BTreeMap::new()),
                    spans: Mutex::new(BTreeMap::new()),
                    sink: core.sink.clone(),
                })),
            },
        }
    }

    /// Open a span; the returned guard records the duration on drop.
    /// Inert (no clock read) when disabled.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            active: self
                .core
                .as_deref()
                .map(|core| (core, name, Instant::now())),
        }
    }

    /// Record an externally-timed span completion (used where a
    /// duration is already measured for other purposes, so enabling
    /// telemetry adds no second clock read).
    pub fn record_span_duration(&self, name: &'static str, elapsed: Duration) {
        if let Some(core) = &self.core {
            core.record_span(name, elapsed);
        }
    }

    /// Increment a counter.
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(core) = &self.core {
            core.count(name, delta);
        }
    }

    /// Copy out the current aggregates (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.core {
            None => MetricsSnapshot::default(),
            Some(core) => MetricsSnapshot {
                counters: core.counters.lock().expect("telemetry counters").clone(),
                spans: core.spans.lock().expect("telemetry spans").clone(),
            },
        }
    }

    /// Fold another collector's snapshot into this one (how shard
    /// snapshots accumulate into the campaign total). No-op when
    /// disabled.
    pub fn merge(&self, snapshot: &MetricsSnapshot) {
        let Some(core) = &self.core else {
            return;
        };
        {
            let mut counters = core.counters.lock().expect("telemetry counters");
            for (name, delta) in &snapshot.counters {
                *counters.entry(name.clone()).or_insert(0) += delta;
            }
        }
        let mut spans = core.spans.lock().expect("telemetry spans");
        for (name, stat) in &snapshot.spans {
            spans.entry(name.clone()).or_default().merge(stat);
        }
    }

    /// Record a cache-lookup outcome under a phase prefix (`reference`
    /// or `cell`): one of `<phase>_memory_hits`, `<phase>_disk_hits`,
    /// `<phase>_computed`.
    pub(crate) fn count_lookup(&self, phase: &'static str, tier: Option<CacheTier>) {
        if self.core.is_none() {
            return;
        }
        let suffix = match tier {
            Some(CacheTier::Memory) => "memory_hits",
            Some(CacheTier::Disk) => "disk_hits",
            None => "computed",
        };
        self.count(&format!("{phase}_{suffix}"), 1);
    }

    /// Assemble the per-campaign [`MetricsReport`] from this handle's
    /// merged aggregates plus the finished outcome's backend-invariant
    /// totals.
    pub fn report(&self, campaign: &str, outcome: &SweepOutcome) -> MetricsReport {
        let snapshot = self.snapshot();
        let errors_by_kind = snapshot
            .counters
            .iter()
            .filter_map(|(name, &v)| {
                name.strip_prefix("errors_")
                    .map(|kind| (kind.to_string(), v))
            })
            .collect();
        MetricsReport {
            campaign: campaign.to_string(),
            cells_total: outcome.cells,
            cells_computed: outcome.cells_computed,
            cells_memory_hits: outcome.cells_memory_hits,
            cells_disk_hits: outcome.cells_disk_hits,
            rows_emitted: outcome.rows.len(),
            references_probed: outcome.references,
            estimator_cells: outcome
                .summary
                .iter()
                .map(|s| (s.estimator.clone(), s.cells))
                .collect(),
            wall_s: outcome.wall.as_secs_f64(),
            errors_by_kind,
            snapshot,
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// The machine-readable per-campaign report behind
/// `sweep --metrics-out` (see [`Telemetry::report`]).
///
/// [`to_json`](MetricsReport::to_json) renders two sections:
///
/// * `stable` — backend-invariant and timestamp-free: identical bytes
///   for the same campaign over equivalent cache state, whether run
///   in-process or over any number of worker processes (cells are
///   deduplicated by global index, so per-shard duplication of shared
///   references never leaks in). This is the snapshot-testable part.
/// * `detail` — execution-dependent: merged span timings, per-phase
///   counters (reference lookups are per-shard, so totals vary with
///   the worker count), worker spawn/retry bookkeeping, wall time,
///   and failure tallies by [`EngineError`](crate::EngineError) kind.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsReport {
    /// Campaign name.
    pub campaign: String,
    /// Total estimator cells.
    pub cells_total: usize,
    /// Cells computed fresh (not served from any cache tier).
    pub cells_computed: usize,
    /// Cells served from the in-memory cache tier.
    pub cells_memory_hits: usize,
    /// Cells served from the on-disk cache tier.
    pub cells_disk_hits: usize,
    /// Rows delivered to the sinks.
    pub rows_emitted: usize,
    /// Monte-Carlo reference probes, summed across shards. A reference
    /// needed by several shards counts once per shard, so this varies
    /// with the worker count — detail section, not stable.
    pub references_probed: usize,
    /// Cells per canonical estimator id.
    pub estimator_cells: BTreeMap<String, usize>,
    /// Campaign wall-clock seconds (detail section).
    pub wall_s: f64,
    /// Failure tallies by [`EngineError`](crate::EngineError) kind
    /// (worker `error` events observed, including attempts whose shard
    /// was successfully retried).
    pub errors_by_kind: BTreeMap<String, u64>,
    /// Merged span/counter aggregates (detail section).
    pub snapshot: MetricsSnapshot,
}

impl MetricsReport {
    fn stable_value(&self) -> Value {
        Value::obj([
            (
                "cells",
                Value::obj([
                    ("total", self.cells_total.serialize()),
                    ("computed", self.cells_computed.serialize()),
                    ("memory_hits", self.cells_memory_hits.serialize()),
                    ("disk_hits", self.cells_disk_hits.serialize()),
                ]),
            ),
            (
                "estimator_cells",
                Value::Obj(
                    self.estimator_cells
                        .iter()
                        .map(|(k, v)| (k.clone(), v.serialize()))
                        .collect(),
                ),
            ),
            ("rows_emitted", self.rows_emitted.serialize()),
        ])
    }

    /// The full report as deterministic-key-order JSON (keys sorted;
    /// the `stable` section additionally has deterministic values).
    pub fn to_json(&self) -> String {
        value_json(&Value::obj([
            ("campaign", Value::Str(self.campaign.clone())),
            ("schema_version", METRICS_SCHEMA_VERSION.serialize()),
            ("stable", self.stable_value()),
            (
                "detail",
                Value::obj([
                    (
                        "errors_by_kind",
                        Value::Obj(
                            self.errors_by_kind
                                .iter()
                                .map(|(k, v)| (k.clone(), v.serialize()))
                                .collect(),
                        ),
                    ),
                    ("references_probed", self.references_probed.serialize()),
                    ("telemetry", self.snapshot.serialize()),
                    ("wall_s", self.wall_s.serialize()),
                ]),
            ),
        ]))
    }

    /// Only the backend-invariant `stable` section, as JSON — the
    /// byte-comparable portion (no timings, no timestamps, cells
    /// deduplicated by global index).
    pub fn stable_json(&self) -> String {
        value_json(&self.stable_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        {
            let _s = t.span("estimate_cell");
        }
        t.count("rows", 3);
        t.record_span_duration("campaign", Duration::from_millis(5));
        assert!(t.snapshot().is_empty());
        assert!(!t.child().is_enabled());
    }

    #[test]
    fn spans_and_counters_aggregate() {
        let t = Telemetry::enabled();
        for _ in 0..3 {
            let _s = t.span("estimate_cell");
        }
        t.record_span_duration("worker_shard", Duration::from_micros(250));
        t.count("rows", 2);
        t.count("rows", 1);
        let snap = t.snapshot();
        assert_eq!(snap.counters["rows"], 3);
        assert_eq!(snap.spans["estimate_cell"].count, 3);
        assert_eq!(snap.spans["worker_shard"].total_ns, 250_000);
        assert_eq!(snap.spans["worker_shard"].min_ns, 250_000);
    }

    #[test]
    fn clones_share_and_children_do_not() {
        let t = Telemetry::enabled();
        let shared = t.clone();
        shared.count("a", 1);
        assert_eq!(t.snapshot().counters["a"], 1);

        let child = t.child();
        assert!(child.is_enabled());
        child.count("b", 5);
        assert!(!t.snapshot().counters.contains_key("b"));
        t.merge(&child.snapshot());
        assert_eq!(t.snapshot().counters["b"], 5);
    }

    #[test]
    fn merge_combines_span_extremes() {
        let a = Telemetry::enabled();
        a.record_span_duration("cache_probe", Duration::from_nanos(100));
        let b = Telemetry::enabled();
        b.record_span_duration("cache_probe", Duration::from_nanos(10));
        b.record_span_duration("cache_probe", Duration::from_nanos(500));
        a.merge(&b.snapshot());
        let s = a.snapshot().spans["cache_probe"];
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 610);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 500);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let t = Telemetry::enabled();
        t.count("references_computed", 12);
        t.record_span_duration("prepare_dag", Duration::from_nanos(42));
        let snap = t.snapshot();
        let text = serde::json::to_string(&snap);
        let back = serde::json::from_str::<MetricsSnapshot>(&text).unwrap();
        assert_eq!(back, snap);
        assert!(serde::json::from_str::<MetricsSnapshot>("{\"counters\":{}}").is_err());
    }

    #[test]
    fn trace_sink_receives_flushed_jsonl() {
        use std::sync::{Arc, Mutex};
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let t = Telemetry::with_trace(Box::new(buf.clone()));
        t.record_span_duration("sink_flush", Duration::from_nanos(7));
        t.count("worker_spawns", 2);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"ns\":7,\"span\":\"sink_flush\"}");
        assert_eq!(lines[1], "{\"counter\":\"worker_spawns\",\"delta\":2}");
        // Children stream to the same trace.
        t.child().count("x", 1);
        assert!(buf.0.lock().unwrap().len() > text.len());
    }
}
