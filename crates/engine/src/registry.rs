//! Name-addressable estimator registry.
//!
//! Every estimator in `stochdag-core` behind an object-safe handle
//! ([`BoxedEstimator`](stochdag_core::BoxedEstimator)), addressed by a
//! typed [`EstimatorSpec`]. The registry is the factory seam between a
//! campaign's declarative spec and concrete estimator instances: the
//! runner calls [`EstimatorRegistry::build`] once per
//! (DAG × estimator) group with the cell's deterministic seed.
//!
//! String spellings (`"first-order"`, `"dodin:64"`, `"mc:10000"`)
//! parse through [`EstimatorRegistry::parse`]; the canonical id —
//! [`EstimatorSpec`]'s `Display`, defaults spelled out — is the
//! identity used in cache keys and result rows, byte-compatible with
//! the stringly-typed registry this one replaced.

use crate::error::EngineError;
use std::collections::BTreeMap;
use stochdag_core::{
    BoxedEstimator, CorLcaEstimator, CovarianceNormalEstimator, DodinEstimator, EstimatorSpec,
    ExactEstimator, FirstOrderEstimator, MonteCarloEstimator, SculliEstimator,
    SecondOrderEstimator, SpeldeEstimator,
};

type Builder = fn(&EstimatorSpec, u64) -> BoxedEstimator;

/// One registry entry.
struct Entry {
    build: Builder,
    about: &'static str,
}

/// The estimator registry (see module docs).
pub struct EstimatorRegistry {
    entries: BTreeMap<&'static str, Entry>,
}

impl EstimatorRegistry {
    /// Registry with every estimator in `stochdag-core`.
    pub fn standard() -> EstimatorRegistry {
        let mut entries: BTreeMap<&'static str, Entry> = BTreeMap::new();
        let mut add = |name: &'static str, about: &'static str, build: Builder| {
            entries.insert(name, Entry { build, about });
        };
        add(
            "first-order",
            "the paper's O(V+E) first-order approximation",
            |_, _| Box::new(FirstOrderEstimator::fast()),
        );
        add(
            "first-order-naive",
            "first-order via per-task longest-path recomputation",
            |_, _| Box::new(FirstOrderEstimator::naive()),
        );
        add(
            "second-order",
            "O(lambda^2)-exact second-order extension",
            |_, _| Box::new(SecondOrderEstimator),
        );
        add(
            "sculli",
            "Sculli's independent-normal propagation",
            |_, _| Box::new(SculliEstimator),
        );
        add(
            "corlca",
            "Canon-Jeannot canonical-ancestor correlation heuristic",
            |_, _| Box::new(CorLcaEstimator),
        );
        add(
            "normal-cov",
            "full covariance-propagating normal estimator",
            |_, _| Box::new(CovarianceNormalEstimator),
        );
        add(
            "dodin",
            "Dodin forward surrogate; arg = support-atom cap",
            |spec, _| {
                let atoms = spec.arg().expect("dodin has an atom cap");
                Box::new(DodinEstimator::scalable().with_max_atoms(atoms))
            },
        );
        add(
            "dodin-dup",
            "faithful Dodin duplication engine; arg = support-atom cap",
            |spec, _| {
                let atoms = spec.arg().expect("dodin-dup has an atom cap");
                Box::new(DodinEstimator::new().with_max_atoms(atoms))
            },
        );
        add(
            "spelde",
            "Spelde path-based bound; arg = number of dominant paths",
            |spec, _| {
                let paths = spec.arg().expect("spelde has a path count");
                Box::new(SpeldeEstimator::new(paths))
            },
        );
        add(
            "exact",
            "exhaustive 2-state oracle (<= 24 tasks)",
            |_, _| Box::new(ExactEstimator),
        );
        add(
            "mc",
            "Monte Carlo with the cell's deterministic seed; arg = trials",
            |spec, seed| {
                let trials = spec.arg().expect("mc has a trial count");
                Box::new(MonteCarloEstimator::new(trials).with_seed(seed))
            },
        );
        EstimatorRegistry { entries }
    }

    /// Registered base names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.keys().copied()
    }

    /// One-line description of a base name.
    pub fn about(&self, name: &str) -> Option<&'static str> {
        self.entries.get(name).map(|e| e.about)
    }

    /// Parse a spec string into a typed [`EstimatorSpec`], rejecting
    /// families this registry does not carry. The round trip
    /// `parse(s)?.to_string()` is the canonical id.
    pub fn parse(&self, spec: &str) -> Result<EstimatorSpec, EngineError> {
        let parsed: EstimatorSpec = spec.parse().map_err(EngineError::spec)?;
        if !self.entries.contains_key(parsed.family()) {
            return Err(EngineError::spec(format!(
                "unknown estimator {:?} (known: {})",
                parsed.family(),
                self.entries.keys().copied().collect::<Vec<_>>().join(", ")
            )));
        }
        Ok(parsed)
    }

    /// Build an estimator from a typed spec and a per-cell seed.
    pub fn build(&self, spec: &EstimatorSpec, seed: u64) -> Result<BoxedEstimator, EngineError> {
        spec.validate().map_err(EngineError::spec)?;
        let entry = self
            .entries
            .get(spec.family())
            .ok_or_else(|| EngineError::spec(format!("unknown estimator {:?}", spec.family())))?;
        Ok((entry.build)(spec, seed))
    }

    /// Canonical form of a string spec (defaults filled in).
    #[deprecated(since = "0.2.0", note = "use `parse(spec)?.to_string()`")]
    pub fn canonical_id(&self, spec: &str) -> Result<String, String> {
        Ok(self.parse(spec)?.to_string())
    }

    /// Build an estimator from a string spec and a per-cell seed.
    #[deprecated(
        since = "0.2.0",
        note = "use `parse` + `build` with a typed EstimatorSpec"
    )]
    pub fn build_str(&self, spec: &str, seed: u64) -> Result<BoxedEstimator, String> {
        Ok(self.build(&self.parse(spec)?, seed)?)
    }
}

impl Default for EstimatorRegistry {
    fn default() -> Self {
        EstimatorRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochdag_core::{Estimator, FailureModel};
    use stochdag_dag::Dag;

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn every_registered_estimator_builds_and_runs() {
        let reg = EstimatorRegistry::standard();
        let g = diamond();
        let m = FailureModel::new(0.01);
        let d_g = 5.0;
        for name in reg.names().collect::<Vec<_>>() {
            let spec = if name == "mc" { "mc:500" } else { name };
            let spec = reg.parse(spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            let est = reg
                .build(&spec, 7)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let v = est.expected_makespan(&g, &m);
            assert!(
                v >= d_g - 1e-9 && v.is_finite(),
                "{name}: estimate {v} below failure-free makespan"
            );
        }
    }

    #[test]
    fn registry_covers_exactly_the_spec_families() {
        let reg = EstimatorRegistry::standard();
        let names: Vec<&str> = reg.names().collect();
        assert_eq!(
            names,
            stochdag_core::ESTIMATOR_FAMILIES,
            "registry and EstimatorSpec enumerate the same closed set"
        );
        for spec in EstimatorSpec::all_default() {
            reg.build(&spec, 1)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
        }
    }

    #[test]
    fn parse_fills_defaults_into_canonical_ids() {
        let reg = EstimatorRegistry::standard();
        let canon = |s: &str| reg.parse(s).unwrap().to_string();
        assert_eq!(canon("first-order"), "first-order");
        assert_eq!(canon("dodin"), "dodin:128");
        assert_eq!(canon("dodin:64"), "dodin:64");
        assert_eq!(canon("mc:5000"), "mc:5000");
        assert_eq!(canon("spelde"), "spelde:16");
    }

    #[test]
    fn bad_specs_are_rejected() {
        let reg = EstimatorRegistry::standard();
        assert!(reg.parse("nope").is_err());
        assert!(reg.parse("sculli:3").is_err());
        assert!(reg.parse("mc:x").is_err());
        assert!(reg.parse("mc:0").is_err());
        assert!(reg.parse("dodin:1").is_err());
        assert!(
            reg.build(&EstimatorSpec::Mc { trials: 0 }, 1).is_err(),
            "typed specs validate at build time too"
        );
    }

    #[test]
    fn deprecated_string_entry_points_still_work() {
        #![allow(deprecated)]
        let reg = EstimatorRegistry::standard();
        assert_eq!(reg.canonical_id("dodin").unwrap(), "dodin:128");
        assert!(reg.canonical_id("nope").is_err());
        let g = diamond();
        let m = FailureModel::new(0.05);
        let v = reg
            .build_str("mc:2000", 11)
            .unwrap()
            .expected_makespan(&g, &m);
        assert!(v.is_finite());
    }

    #[test]
    fn mc_is_seed_deterministic() {
        let reg = EstimatorRegistry::standard();
        let g = diamond();
        let m = FailureModel::new(0.05);
        let spec = reg.parse("mc:2000").unwrap();
        let a = reg.build(&spec, 11).unwrap().expected_makespan(&g, &m);
        let b = reg.build(&spec, 11).unwrap().expected_makespan(&g, &m);
        let c = reg.build(&spec, 12).unwrap().expected_makespan(&g, &m);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn registry_lists_descriptions() {
        let reg = EstimatorRegistry::standard();
        assert!(reg.about("first-order").is_some());
        assert!(reg.about("nope").is_none());
        assert!(reg.names().count() >= 10);
    }
}
