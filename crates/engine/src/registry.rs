//! Name-addressable estimator registry.
//!
//! Every estimator in `stochdag-core` behind an object-safe handle
//! ([`BoxedEstimator`]), addressable by a *spec string*:
//!
//! | Spec | Estimator |
//! |------|-----------|
//! | `first-order` | [`FirstOrderEstimator::fast`] |
//! | `first-order-naive` | [`FirstOrderEstimator::naive`] |
//! | `second-order` | [`SecondOrderEstimator`] |
//! | `sculli` | [`SculliEstimator`] |
//! | `corlca` | [`CorLcaEstimator`] |
//! | `normal-cov` | [`CovarianceNormalEstimator`] |
//! | `dodin[:ATOMS]` | [`DodinEstimator::scalable`] (forward surrogate) |
//! | `dodin-dup[:ATOMS]` | [`DodinEstimator::new`] (faithful duplication) |
//! | `spelde[:PATHS]` | [`SpeldeEstimator`] |
//! | `exact` | [`ExactEstimator`] (≤ 24 tasks) |
//! | `mc[:TRIALS]` | [`MonteCarloEstimator`] (seeded per cell) |
//!
//! The optional `:arg` suffix carries the one numeric knob an estimator
//! family exposes to sweeps. [`EstimatorRegistry::canonical_id`]
//! normalizes a spec (filling in defaults) so cache keys are stable
//! under spelling variations.

use std::collections::BTreeMap;
use stochdag_core::{
    BoxedEstimator, CorLcaEstimator, CovarianceNormalEstimator, DodinEstimator, ExactEstimator,
    FirstOrderEstimator, MonteCarloEstimator, SculliEstimator, SecondOrderEstimator,
    SpeldeEstimator,
};

/// Parameters available to an estimator builder.
#[derive(Clone, Debug)]
pub struct BuildContext {
    /// Optional `:arg` from the spec string.
    pub arg: Option<u64>,
    /// Deterministic per-cell seed (used by statistical estimators).
    pub seed: u64,
}

type Builder = fn(&BuildContext) -> Result<BoxedEstimator, String>;

/// One registry entry.
struct Entry {
    build: Builder,
    /// Default value of the `:arg` knob, if the family has one.
    default_arg: Option<u64>,
    about: &'static str,
}

/// The estimator registry (see module docs).
pub struct EstimatorRegistry {
    entries: BTreeMap<&'static str, Entry>,
}

impl EstimatorRegistry {
    /// Registry with every estimator in `stochdag-core`.
    pub fn standard() -> EstimatorRegistry {
        let mut entries: BTreeMap<&'static str, Entry> = BTreeMap::new();
        let mut add =
            |name: &'static str, default_arg: Option<u64>, about: &'static str, build: Builder| {
                entries.insert(
                    name,
                    Entry {
                        build,
                        default_arg,
                        about,
                    },
                );
            };
        add(
            "first-order",
            None,
            "the paper's O(V+E) first-order approximation",
            |_| Ok(Box::new(FirstOrderEstimator::fast())),
        );
        add(
            "first-order-naive",
            None,
            "first-order via per-task longest-path recomputation",
            |_| Ok(Box::new(FirstOrderEstimator::naive())),
        );
        add(
            "second-order",
            None,
            "O(lambda^2)-exact second-order extension",
            |_| Ok(Box::new(SecondOrderEstimator)),
        );
        add(
            "sculli",
            None,
            "Sculli's independent-normal propagation",
            |_| Ok(Box::new(SculliEstimator)),
        );
        add(
            "corlca",
            None,
            "Canon-Jeannot canonical-ancestor correlation heuristic",
            |_| Ok(Box::new(CorLcaEstimator)),
        );
        add(
            "normal-cov",
            None,
            "full covariance-propagating normal estimator",
            |_| Ok(Box::new(CovarianceNormalEstimator)),
        );
        add(
            "dodin",
            Some(128),
            "Dodin forward surrogate; arg = support-atom cap",
            |ctx| {
                Ok(Box::new(
                    DodinEstimator::scalable().with_max_atoms(require_atoms(ctx)?),
                ))
            },
        );
        add(
            "dodin-dup",
            Some(128),
            "faithful Dodin duplication engine; arg = support-atom cap",
            |ctx| {
                Ok(Box::new(
                    DodinEstimator::new().with_max_atoms(require_atoms(ctx)?),
                ))
            },
        );
        add(
            "spelde",
            Some(16),
            "Spelde path-based bound; arg = number of dominant paths",
            |ctx| {
                let paths = ctx.arg.unwrap_or(16);
                if paths == 0 {
                    return Err("spelde needs at least one path".into());
                }
                Ok(Box::new(SpeldeEstimator::new(paths as usize)))
            },
        );
        add(
            "exact",
            None,
            "exhaustive 2-state oracle (<= 24 tasks)",
            |_| Ok(Box::new(ExactEstimator)),
        );
        add(
            "mc",
            Some(10_000),
            "Monte Carlo with the cell's deterministic seed; arg = trials",
            |ctx| {
                let trials = ctx.arg.unwrap_or(10_000);
                if trials == 0 {
                    return Err("mc needs at least one trial".into());
                }
                Ok(Box::new(
                    MonteCarloEstimator::new(trials as usize).with_seed(ctx.seed),
                ))
            },
        );
        EstimatorRegistry { entries }
    }

    /// Registered base names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.keys().copied()
    }

    /// One-line description of a base name.
    pub fn about(&self, name: &str) -> Option<&'static str> {
        self.entries.get(name).map(|e| e.about)
    }

    /// Split a spec string into `(base, arg)`.
    fn parse(spec: &str) -> Result<(&str, Option<u64>), String> {
        match spec.split_once(':') {
            None => Ok((spec, None)),
            Some((base, arg)) => {
                let n: u64 = arg
                    .parse()
                    .map_err(|_| format!("estimator spec {spec:?}: bad argument {arg:?}"))?;
                Ok((base, Some(n)))
            }
        }
    }

    /// Canonical form of a spec (defaults filled in) — the identity
    /// used in cache keys and result rows, stable across spellings.
    ///
    /// Also exercises the builder (constructors are cheap), so a spec
    /// whose *argument* is invalid (`mc:0`, `dodin:1`, `spelde:0`) is
    /// rejected here, before a sweep launches any work.
    pub fn canonical_id(&self, spec: &str) -> Result<String, String> {
        let (base, arg) = Self::parse(spec)?;
        let entry = self.entries.get(base).ok_or_else(|| {
            format!(
                "unknown estimator {base:?} (known: {})",
                self.entries.keys().copied().collect::<Vec<_>>().join(", ")
            )
        })?;
        let id = match (entry.default_arg, arg) {
            (None, Some(_)) => return Err(format!("estimator {base:?} takes no argument")),
            (None, None) => base.to_string(),
            (Some(d), None) => format!("{base}:{d}"),
            (Some(_), Some(a)) => format!("{base}:{a}"),
        };
        self.build(spec, 0)?;
        Ok(id)
    }

    /// Build an estimator from a spec string and a per-cell seed.
    pub fn build(&self, spec: &str, seed: u64) -> Result<BoxedEstimator, String> {
        let (base, arg) = Self::parse(spec)?;
        let entry = self
            .entries
            .get(base)
            .ok_or_else(|| format!("unknown estimator {base:?}"))?;
        let ctx = BuildContext {
            arg: arg.or(entry.default_arg),
            seed,
        };
        (entry.build)(&ctx)
    }
}

fn require_atoms(ctx: &BuildContext) -> Result<usize, String> {
    let atoms = ctx.arg.unwrap_or(128);
    if atoms < 2 {
        return Err("dodin needs at least two support atoms".into());
    }
    Ok(atoms as usize)
}

impl Default for EstimatorRegistry {
    fn default() -> Self {
        EstimatorRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochdag_core::{Estimator, FailureModel};
    use stochdag_dag::Dag;

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn every_registered_estimator_builds_and_runs() {
        let reg = EstimatorRegistry::standard();
        let g = diamond();
        let m = FailureModel::new(0.01);
        let d_g = 5.0;
        for name in reg.names().collect::<Vec<_>>() {
            let spec = if name == "mc" { "mc:500" } else { name };
            let est = reg.build(spec, 7).unwrap_or_else(|e| panic!("{name}: {e}"));
            let v = est.expected_makespan(&g, &m);
            assert!(
                v >= d_g - 1e-9 && v.is_finite(),
                "{name}: estimate {v} below failure-free makespan"
            );
        }
    }

    #[test]
    fn canonical_ids_fill_defaults() {
        let reg = EstimatorRegistry::standard();
        assert_eq!(reg.canonical_id("first-order").unwrap(), "first-order");
        assert_eq!(reg.canonical_id("dodin").unwrap(), "dodin:128");
        assert_eq!(reg.canonical_id("dodin:64").unwrap(), "dodin:64");
        assert_eq!(reg.canonical_id("mc:5000").unwrap(), "mc:5000");
        assert_eq!(reg.canonical_id("spelde").unwrap(), "spelde:16");
    }

    #[test]
    fn bad_specs_are_rejected() {
        let reg = EstimatorRegistry::standard();
        assert!(reg.canonical_id("nope").is_err());
        assert!(reg.canonical_id("sculli:3").is_err());
        assert!(reg.canonical_id("mc:x").is_err());
        assert!(reg.build("mc:0", 1).is_err());
        assert!(reg.build("dodin:1", 1).is_err());
    }

    #[test]
    fn mc_is_seed_deterministic() {
        let reg = EstimatorRegistry::standard();
        let g = diamond();
        let m = FailureModel::new(0.05);
        let a = reg.build("mc:2000", 11).unwrap().expected_makespan(&g, &m);
        let b = reg.build("mc:2000", 11).unwrap().expected_makespan(&g, &m);
        let c = reg.build("mc:2000", 12).unwrap().expected_makespan(&g, &m);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn registry_lists_descriptions() {
        let reg = EstimatorRegistry::standard();
        assert!(reg.about("first-order").is_some());
        assert!(reg.about("nope").is_none());
        assert!(reg.names().count() >= 10);
    }
}
