//! Public-API snapshot: the engine's exported symbol list is pinned so
//! future API breaks are deliberate, reviewed changes — not accidents
//! of a refactor. If this test fails, either restore the export or
//! update `EXPECTED` *and* the README's migration notes in the same
//! change.

/// Every name `stochdag_engine` re-exports at the crate root, sorted.
const EXPECTED: &[&str] = &[
    "BackendContext",
    "CacheGcStats",
    "CacheTier",
    "Campaign",
    "CampaignBuilder",
    "CampaignEvent",
    "CampaignObserver",
    "CampaignPlan",
    "CancelToken",
    "CsvSink",
    "DagInstance",
    "DagSpec",
    "Deliver",
    "DryRun",
    "DryRunInstance",
    "EngineError",
    "EstimatorRegistry",
    "EstimatorSpec",
    "ExecBackend",
    "ExecBackendV1",
    "FnObserver",
    "InProcess",
    "JsonlSink",
    "LeaseExecutor",
    "LeasePoll",
    "LeaseQueue",
    "MetricsReport",
    "MetricsSnapshot",
    "MultiProcess",
    "ProgressMode",
    "ProgressReporter",
    "Reorderer",
    "ResultCache",
    "ResultSink",
    "ResumeEstimatorReport",
    "ResumeReport",
    "ScenarioModel",
    "ScenarioSpec",
    "SharedFs",
    "ShardCoverage",
    "ShardOutcome",
    "SpanGuard",
    "SpanStat",
    "SpoolSummary",
    "SpoolWorker",
    "StableHasher",
    "SummaryRow",
    "SweepOutcome",
    "SweepRow",
    "SweepSpec",
    "Telemetry",
    "TelemetrySink",
    "UnsupportedScenario",
    "V1Backend",
    "VecSink",
    "WireObserver",
    "WorkLease",
    "cell_key",
    "decode_event",
    "decode_lease",
    "encode_event",
    "encode_lease",
    "merge_event_streams",
    "parse_toml",
    "shard_of",
    "summarize",
];

/// Extract the names re-exported by `pub use …;` items in lib.rs.
fn exported_names(source: &str) -> Vec<String> {
    // Strip line comments, join, then walk `pub use …;` items. The
    // lib.rs style is plain paths and brace lists (no globs, no
    // nesting), so this stays a simple scanner.
    let joined: String = source
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    let mut names = Vec::new();
    let mut rest = joined.as_str();
    while let Some(start) = rest.find("pub use ") {
        rest = &rest[start + "pub use ".len()..];
        let end = rest.find(';').expect("pub use item is terminated");
        let item = &rest[..end];
        rest = &rest[end + 1..];
        let item = item.trim();
        assert!(!item.contains('*'), "glob re-exports hide the surface");
        if let Some(brace) = item.find('{') {
            let list = item[brace + 1..].trim_end_matches('}');
            for name in list.split(',') {
                let name = name.trim();
                if !name.is_empty() {
                    names.push(name.rsplit("::").next().unwrap().trim().to_string());
                }
            }
        } else {
            names.push(item.rsplit("::").next().unwrap().trim().to_string());
        }
    }
    names.sort();
    names.dedup();
    names
}

#[test]
fn exported_symbol_list_is_pinned() {
    let names = exported_names(include_str!("../src/lib.rs"));
    let expected: Vec<String> = {
        let mut v: Vec<String> = EXPECTED.iter().map(|s| s.to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(
        names, expected,
        "the engine's public re-export surface changed; if intentional, \
         update EXPECTED and the README migration notes together"
    );
}

#[test]
fn snapshot_names_actually_resolve() {
    // A compile-time cross-check that the snapshot is not stale: every
    // type/function named above is imported here. (A name dropped from
    // lib.rs fails this `use`; a name added to lib.rs fails the
    // snapshot comparison.)
    #[allow(unused_imports)]
    use stochdag_engine::{
        cell_key, decode_event, decode_lease, encode_event, encode_lease, merge_event_streams,
        parse_toml, shard_of, summarize, BackendContext, CacheGcStats, CacheTier, Campaign,
        CampaignBuilder, CampaignEvent, CampaignObserver, CampaignPlan, CancelToken, CsvSink,
        DagInstance, DagSpec, Deliver, DryRun, DryRunInstance, EngineError, EstimatorRegistry,
        EstimatorSpec, ExecBackend, ExecBackendV1, FnObserver, InProcess, JsonlSink, LeaseExecutor,
        LeasePoll, LeaseQueue, MetricsReport, MetricsSnapshot, MultiProcess, ProgressMode,
        ProgressReporter, Reorderer, ResultCache, ResultSink, ResumeEstimatorReport, ResumeReport,
        ScenarioModel, ScenarioSpec, ShardCoverage, ShardOutcome, SharedFs, SpanGuard, SpanStat,
        SpoolSummary, SpoolWorker, StableHasher, SummaryRow, SweepOutcome, SweepRow, SweepSpec,
        Telemetry, TelemetrySink, UnsupportedScenario, V1Backend, VecSink, WireObserver, WorkLease,
    };
}
