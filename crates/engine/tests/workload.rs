//! End-to-end coverage of the workload subsystem inside the engine:
//! trace-backed `DagSpec` sources (DOT + WfCommons JSON), the
//! correlated-failure scenario axis, content-addressed trace cache
//! keys, and the i.i.d. byte-compatibility guarantee.

use std::io::Cursor;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use stochdag_engine::{
    encode_event, merge_event_streams, Campaign, CampaignEvent, CsvSink, FnObserver,
    ProgressReporter, ResultCache, ResultSink, SweepSpec, VecSink,
};

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../workload/tests/fixtures")
        .join(name)
        .display()
        .to_string()
}

/// The CI workload campaign: two ingested traces, i.i.d. + rack
/// scenario, 2 estimators → 8 cells.
fn trace_spec() -> SweepSpec {
    SweepSpec::from_str_auto(&format!(
        r#"
name = "workload"
seed = 7
pfails = [0.01]
estimators = ["first-order", "mc:400"]
reference_trials = 1500
scenarios = ["iid", "rack:3:0.05:2"]

[[dags]]
kind = "dot"
path = "{}"

[[dags]]
kind = "trace-json"
path = "{}"
"#,
        fixture("montage-sample.dot"),
        fixture("epigenomics-sample.json"),
    ))
    .unwrap()
}

/// A cloneable in-memory writer, so CSV bytes survive the campaign
/// consuming its sinks.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn trace_campaign_with_rack_scenario_end_to_end() {
    let outcome = Campaign::builder(trace_spec())
        .sink(VecSink::default())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.cells, 8, "2 traces x 1 pfail x 2 scenarios x 2");
    assert_eq!(outcome.references, 4, "one reference per model x scenario");

    // Trace instances are content-addressed: format:name:hash48, so a
    // renamed or moved file keeps its identity (and its cache). These
    // ids are pinned to the committed fixtures.
    let dags: std::collections::BTreeSet<&str> =
        outcome.rows.iter().map(|r| r.dag.as_str()).collect();
    assert_eq!(
        dags.into_iter().collect::<Vec<_>>(),
        vec![
            "dot:montage_sample:97ad26851648",
            "trace-json:epigenomics-sample:49252d8d19c6",
        ]
    );

    // The i.i.d. half keeps the bare model label; the correlated half
    // is suffixed with the canonical scenario id.
    let labels: std::collections::BTreeSet<&str> =
        outcome.rows.iter().map(|r| r.model.as_str()).collect();
    assert_eq!(
        labels.into_iter().collect::<Vec<_>>(),
        vec!["pfail=0.01", "pfail=0.01|rack:3:0.05:2"]
    );

    // First-order's exact mixture expansion must agree with the MC
    // reference (which samples the actual correlated scenario) on
    // every row — including the rack rows.
    for row in &outcome.rows {
        assert!(
            row.rel_error.abs() < 0.05,
            "{} on {} ({}): rel_error {}",
            row.estimator,
            row.dag,
            row.model,
            row.rel_error
        );
    }
}

#[test]
fn bursty_scenario_runs_with_supported_estimators() {
    let spec = SweepSpec::from_str_auto(&format!(
        r#"
name = "bursty"
seed = 3
pfails = [0.02]
estimators = ["first-order", "first-order-naive", "mc:600"]
reference_trials = 2000
scenarios = ["bursty:3:0.5:2:11"]

[[dags]]
kind = "dot"
path = "{}"
"#,
        fixture("montage-sample.dot"),
    ))
    .unwrap();
    let outcome = Campaign::builder(spec)
        .sink(VecSink::default())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.cells, 3);
    for row in &outcome.rows {
        assert_eq!(row.model, "pfail=0.02|bursty:3:0.5:2:11");
        assert!(
            row.rel_error.abs() < 0.05,
            "{}: rel_error {}",
            row.estimator,
            row.rel_error
        );
    }
}

#[test]
fn trace_cache_keys_follow_graph_content_not_path() {
    let cache = Arc::new(ResultCache::in_memory());
    let first = Campaign::builder(trace_spec())
        .cache(cache.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(first.cache_hits, 0);

    // Move both fixtures to new names in a scratch directory: the
    // parsed graphs are unchanged, so every cell must come from cache.
    let dir = std::env::temp_dir().join(format!("stochdag_wl_move_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let moved_dot = dir.join("renamed-trace.dot");
    let moved_json = dir.join("renamed-trace.json");
    std::fs::copy(fixture("montage-sample.dot"), &moved_dot).unwrap();
    std::fs::copy(fixture("epigenomics-sample.json"), &moved_json).unwrap();
    let moved_spec = SweepSpec::from_str_auto(&format!(
        r#"
name = "workload"
seed = 7
pfails = [0.01]
estimators = ["first-order", "mc:400"]
reference_trials = 1500
scenarios = ["iid", "rack:3:0.05:2"]

[[dags]]
kind = "dot"
path = "{}"

[[dags]]
kind = "trace-json"
path = "{}"
"#,
        moved_dot.display(),
        moved_json.display(),
    ))
    .unwrap();
    let second = Campaign::builder(moved_spec)
        .cache(cache)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(
        second.fully_cached(),
        "moved trace files must hit the content-addressed cache ({} misses)",
        second.cache_misses
    );
    assert_eq!(second.rows, first.rows, "identical rows after the move");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explicit_iid_scenario_is_byte_identical_to_absent() {
    let mut with_iid = trace_spec();
    with_iid.scenarios.truncate(1); // just ["iid"]
    let mut absent = trace_spec();
    absent.scenarios.clear();

    let cache = Arc::new(ResultCache::in_memory());
    let buf_a = SharedBuf::default();
    let a = Campaign::builder(with_iid)
        .cache(cache.clone())
        .sink(CsvSink::new(buf_a.clone()))
        .build()
        .unwrap()
        .run()
        .unwrap();
    let buf_b = SharedBuf::default();
    let b = Campaign::builder(absent)
        .cache(cache)
        .sink(CsvSink::new(buf_b.clone()))
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(
        b.fully_cached(),
        "an explicit iid scenario must reuse the bare-spec cache keys \
         ({} misses)",
        b.cache_misses
    );
    assert_eq!(a.rows, b.rows);
    assert_eq!(buf_a.bytes(), buf_b.bytes(), "byte-identical CSV");
}

#[test]
fn scenario_shards_match_in_process_byte_for_byte() {
    let spec = trace_spec();
    let dir = std::env::temp_dir().join(format!("stochdag_wl_shard_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache_dir = dir.join("cache");

    // Worker half: each shard is a fresh process-like cache handle
    // over the shared directory, its event stream captured as a worker
    // process's stdout would carry it.
    let streams: Vec<Vec<String>> = (0..2)
        .map(|shard| {
            let lines = Arc::new(Mutex::new(Vec::new()));
            let sink = lines.clone();
            Campaign::builder(spec.clone())
                .cache(Arc::new(ResultCache::on_disk(&cache_dir)))
                .observer(FnObserver(move |ev: &CampaignEvent| {
                    sink.lock().unwrap().push(encode_event(ev));
                }))
                .build()
                .unwrap()
                .run_shard(shard, 2)
                .unwrap();
            let out = lines.lock().unwrap().clone();
            out
        })
        .collect();
    let readers: Vec<Cursor<Vec<u8>>> = streams
        .into_iter()
        .map(|lines| Cursor::new((lines.join("\n") + "\n").into_bytes()))
        .collect();
    let mut csv = CsvSink::new(Vec::new());
    let merged = {
        let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut csv];
        merge_event_streams(readers, &mut sinks, &mut ProgressReporter::disabled()).unwrap()
    };
    let merged_csv = csv.into_inner();
    assert_eq!(merged.cells, 8);

    // Coordinator half: a single-process run over the same cache must
    // be fully served and byte-identical.
    let buf = SharedBuf::default();
    let single = Campaign::builder(spec)
        .cache(Arc::new(ResultCache::on_disk(&cache_dir)))
        .sink(CsvSink::new(buf.clone()))
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(single.fully_cached(), "{} misses", single.cache_misses);
    assert_eq!(merged.rows, single.rows);
    assert_eq!(merged_csv, buf.bytes(), "byte-identical CSV");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unsupported_estimator_under_scenarios_is_a_structured_spec_error() {
    let mut spec = trace_spec();
    spec.estimators = vec!["sculli".parse().unwrap()];
    let err = Campaign::builder(spec).build().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("sculli") && msg.contains("does not support correlated failure scenarios"),
        "{msg}"
    );
    assert!(
        msg.contains("first-order"),
        "names the supported families: {msg}"
    );
}

#[test]
fn trace_parse_errors_surface_with_location_and_path() {
    let dir = std::env::temp_dir().join(format!("stochdag_wl_err_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.dot");
    std::fs::write(&bad, "digraph g {\n  a -> ;\n}\n").unwrap();
    let spec = SweepSpec::from_str_auto(&format!(
        r#"
name = "bad"
seed = 1
pfails = [0.01]
estimators = ["first-order"]
reference_trials = 100

[[dags]]
kind = "dot"
path = "{}"
"#,
        bad.display(),
    ))
    .unwrap();
    let err = Campaign::builder(spec)
        .sink(VecSink::default())
        .build()
        .unwrap()
        .run()
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("bad.dot"), "names the file: {msg}");
    assert!(msg.contains("line 2"), "locates the error: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}
