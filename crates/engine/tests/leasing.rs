//! Adversarial lease interleavings against the `ExecBackend` v2
//! work-leasing API: whatever order worker slots pull, complete, or
//! crash on their [`WorkLease`] batches, the campaign's merged output
//! must be byte-identical to a single-process run — that is the
//! contract that makes pull scheduling safe to adopt.
//!
//! Every scenario here drives a *custom* backend through the public
//! [`LeaseQueue`]/[`LeaseExecutor`] seam, exactly as an embedder
//! writing their own distribution layer would.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use stochdag_engine::{
    decode_event, decode_lease, encode_event, encode_lease, BackendContext, Campaign,
    CampaignEvent, CsvSink, Deliver, EngineError, ExecBackend, FnObserver, LeaseExecutor,
    LeaseQueue, ResultCache, SweepSpec, WorkLease,
};

fn spec(name: &str) -> SweepSpec {
    SweepSpec::from_str_auto(&format!(
        r#"
        name = "{name}"
        seed = 9
        pfails = [0.01, 0.05]
        estimators = ["first-order", "sculli"]
        reference_trials = 800
        [[dags]]
        kind = "cholesky"
        ks = [2, 3]
        "#
    ))
    .unwrap()
}

/// A cloneable in-memory writer, so CSV bytes survive the campaign
/// consuming its sinks.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Reference output: the same spec under the default in-process
/// backend over `cache`. Cell timings live in the cache, so two runs
/// are byte-comparable exactly when they share one — the same warm
/// replay contract the distributed byte-identity tests use.
fn single_process_csv(name: &str, cache: &Arc<ResultCache>) -> Vec<u8> {
    let buf = SharedBuf::default();
    let outcome = Campaign::builder(spec(name))
        .cache(cache.clone())
        .sink(CsvSink::new(buf.clone()))
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(
        outcome.fully_cached(),
        "the adversarial backend must have computed every unit ({} misses)",
        outcome.cache_misses
    );
    buf.bytes()
}

/// Run the spec on `backend` over `cache` into a CSV buffer.
fn csv_under(name: &str, cache: &Arc<ResultCache>, backend: impl ExecBackend + 'static) -> Vec<u8> {
    let buf = SharedBuf::default();
    let outcome = Campaign::builder(spec(name))
        .cache(cache.clone())
        .sink(CsvSink::new(buf.clone()))
        .backend(backend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.cells, 8, "2 DAGs x 2 pfails x 2 estimators");
    buf.bytes()
}

fn hello(deliver: &Deliver<'_>, ctx: &BackendContext<'_>) -> Result<(), EngineError> {
    deliver(
        0,
        CampaignEvent::Hello {
            shard: 0,
            shard_count: 1,
            cells: ctx.plan.cells(),
            references: ctx.plan.references(),
            version: Some(2),
            jobs: ctx.spec.jobs,
        },
    )
}

fn done(deliver: &Deliver<'_>) -> Result<(), EngineError> {
    deliver(
        0,
        CampaignEvent::Done {
            hits: 0,
            misses: 0,
            wall_s: 0.0,
        },
    )
}

/// Grants every lease up front, then executes them in **reverse**
/// order — the most out-of-order completion a single consumer can
/// produce.
struct ReverseOrder;

impl ExecBackend for ReverseOrder {
    fn name(&self) -> String {
        "reverse-order".into()
    }

    fn execute(
        &self,
        ctx: &BackendContext<'_>,
        leases: &LeaseQueue,
        deliver: &Deliver<'_>,
    ) -> Result<(), EngineError> {
        hello(deliver, ctx)?;
        let executor = LeaseExecutor::new(ctx);
        let mut granted = Vec::new();
        while let Some(lease) = leases.next() {
            granted.push(lease);
        }
        for lease in granted.iter().rev() {
            executor.run(lease, &|ev| deliver(0, ev))?;
            leases.complete(lease.lease_id);
        }
        done(deliver)
    }
}

/// Two pulling threads, one of which dawdles before every batch: the
/// fast slot wins most leases, the slow one trickles in late — the
/// interleaving static sharding could never produce.
struct SlowAndFast;

impl ExecBackend for SlowAndFast {
    fn name(&self) -> String {
        "slow-and-fast".into()
    }

    fn workers(&self) -> usize {
        2
    }

    fn execute(
        &self,
        ctx: &BackendContext<'_>,
        leases: &LeaseQueue,
        deliver: &Deliver<'_>,
    ) -> Result<(), EngineError> {
        hello(deliver, ctx)?;
        let executor = LeaseExecutor::new(ctx);
        let first_error: Mutex<Option<EngineError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for slow in [false, true] {
                let executor = &executor;
                let first_error = &first_error;
                scope.spawn(move || {
                    while let Some(lease) = leases.next() {
                        if slow {
                            std::thread::sleep(Duration::from_millis(15));
                        }
                        match executor.run(&lease, &|ev| deliver(0, ev)) {
                            Ok(()) => leases.complete(lease.lease_id),
                            Err(e) => {
                                first_error.lock().unwrap().get_or_insert(e);
                                return;
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = first_error.into_inner().unwrap() {
            return Err(e);
        }
        done(deliver)
    }
}

/// Crashes the first granted lease mid-batch (after its first `Cell`
/// event escaped), re-queues it, and then drains normally — the
/// events of the dead attempt stay delivered, exactly like a crashed
/// worker process whose stdout the coordinator already merged.
struct CrashOnceMidLease {
    crashes: AtomicUsize,
}

impl ExecBackend for CrashOnceMidLease {
    fn name(&self) -> String {
        "crash-once".into()
    }

    fn execute(
        &self,
        ctx: &BackendContext<'_>,
        leases: &LeaseQueue,
        deliver: &Deliver<'_>,
    ) -> Result<(), EngineError> {
        hello(deliver, ctx)?;
        let executor = LeaseExecutor::new(ctx);
        while let Some(lease) = leases.next() {
            let crash_this = self.crashes.fetch_add(1, Ordering::SeqCst) == 0
                && leases.attempts(lease.lease_id) == 1;
            if !crash_this {
                self.crashes.fetch_sub(1, Ordering::SeqCst);
            }
            let cells_seen = AtomicUsize::new(0);
            let emit = |ev: CampaignEvent| {
                let is_cell = matches!(ev, CampaignEvent::Cell { .. });
                deliver(0, ev)?;
                if is_cell && crash_this && cells_seen.fetch_add(1, Ordering::SeqCst) == 0 {
                    return Err(EngineError::spec("simulated mid-lease crash"));
                }
                Ok(())
            };
            match executor.run(&lease, &emit) {
                Ok(()) => leases.complete(lease.lease_id),
                Err(_) if crash_this => {
                    assert!(
                        leases.requeue(lease.lease_id),
                        "first crash must be re-queueable"
                    );
                }
                Err(e) => return Err(e),
            }
        }
        done(deliver)
    }
}

/// Crashes *every* attempt of lease 0 until the queue refuses to
/// re-queue it — the exhaustion path a repeatedly-dying worker hits.
struct AlwaysCrashFirstLease;

impl ExecBackend for AlwaysCrashFirstLease {
    fn name(&self) -> String {
        "always-crash".into()
    }

    fn execute(
        &self,
        ctx: &BackendContext<'_>,
        leases: &LeaseQueue,
        deliver: &Deliver<'_>,
    ) -> Result<(), EngineError> {
        hello(deliver, ctx)?;
        let executor = LeaseExecutor::new(ctx);
        while let Some(lease) = leases.next() {
            if lease.lease_id == 0 {
                let emit = |ev: CampaignEvent| {
                    let is_cell = matches!(ev, CampaignEvent::Cell { .. });
                    deliver(0, ev)?;
                    if is_cell {
                        return Err(EngineError::spec("simulated crash"));
                    }
                    Ok(())
                };
                let err = executor.run(&lease, &emit).unwrap_err();
                if !leases.requeue(lease.lease_id) {
                    return Err(EngineError::worker(
                        None,
                        format!(
                            "lease {} failed after {} attempts (last: {err})",
                            lease.lease_id,
                            leases.attempts(lease.lease_id)
                        ),
                    ));
                }
                continue;
            }
            executor.run(&lease, &|ev| deliver(0, ev))?;
            leases.complete(lease.lease_id);
        }
        done(deliver)
    }
}

#[test]
fn out_of_order_lease_completion_is_byte_identical() {
    let cache = Arc::new(ResultCache::in_memory());
    assert_eq!(
        csv_under("interleave", &cache, ReverseOrder),
        single_process_csv("interleave", &cache),
        "reverse-order lease execution must merge to identical bytes"
    );
}

#[test]
fn slow_worker_interleaving_is_byte_identical() {
    let cache = Arc::new(ResultCache::in_memory());
    assert_eq!(
        csv_under("slowfast", &cache, SlowAndFast),
        single_process_csv("slowfast", &cache),
        "a straggling worker slot must not perturb the merged output"
    );
}

#[test]
fn mid_lease_crash_requeues_and_stays_byte_identical() {
    // Count post-dedup observer deliveries per cell index: the crashed
    // attempt's duplicate events must never reach observers twice.
    let seen = Arc::new(Mutex::new(std::collections::HashMap::<usize, usize>::new()));
    let counter = seen.clone();
    let cache = Arc::new(ResultCache::in_memory());
    let buf = SharedBuf::default();
    let outcome = Campaign::builder(spec("crashlease"))
        .cache(cache.clone())
        .sink(CsvSink::new(buf.clone()))
        .backend(CrashOnceMidLease {
            crashes: AtomicUsize::new(0),
        })
        .observer(FnObserver(move |ev: &CampaignEvent| {
            if let CampaignEvent::Cell { index, .. } = ev {
                *counter.lock().unwrap().entry(*index).or_insert(0) += 1;
            }
        }))
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.cells, 8);
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 8, "every cell observed");
    assert!(
        seen.values().all(|&n| n == 1),
        "re-queued attempt's duplicates must be dropped before observers: {seen:?}"
    );
    assert_eq!(
        buf.bytes(),
        single_process_csv("crashlease", &cache),
        "a mid-lease crash plus re-queue must merge to identical bytes"
    );
}

#[test]
fn requeue_exhaustion_fails_the_campaign_but_keeps_the_cache() {
    let cache = Arc::new(ResultCache::in_memory());
    let err = Campaign::builder(spec("exhaust"))
        .cache(cache.clone())
        .backend(AlwaysCrashFirstLease)
        .build()
        .unwrap()
        .run()
        .unwrap_err();
    assert!(
        err.to_string().contains("failed after 2 attempts"),
        "exhausted lease must fail the campaign: {err}"
    );
    // Everything the healthy leases finished (and the crashed lease's
    // completed cells) is in the cache: a plain retry reuses it.
    let outcome = Campaign::builder(spec("exhaust"))
        .cache(cache)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.cells, 8);
    assert!(
        outcome.cache_hits > 0,
        "the failed campaign's finished work must survive in the cache"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Lease request lines survive the wire in both directions.
    #[test]
    fn lease_lines_round_trip(
        lease_id in 0usize..1_000_000,
        cells in proptest::collection::vec(0usize..5_000_000, 0..24),
    ) {
        let lease = WorkLease { lease_id, cells };
        let line = encode_lease(&lease);
        prop_assert!(!line.contains('\n'), "one lease per line");
        prop_assert_eq!(decode_lease(&line).unwrap(), lease);
    }

    // The lease lifecycle events of the v2 protocol round-trip
    // through the shared event codec.
    #[test]
    fn lease_protocol_events_round_trip(
        lease_id in 0usize..1_000_000,
        cells in 0usize..10_000,
        hits in 0usize..10_000,
        misses in 0usize..10_000,
        references in 0usize..10_000,
        leases in 0usize..10_000,
    ) {
        for event in [
            CampaignEvent::Plan { cells, references, leases },
            CampaignEvent::LeaseStart { lease_id, cells },
            CampaignEvent::LeaseDone { lease_id, cells, hits, misses },
        ] {
            let line = encode_event(&event);
            prop_assert!(!line.contains('\n'));
            prop_assert_eq!(decode_event(&line).unwrap(), event);
        }
    }
}
