//! The sweep engine must build, freeze, and hash each DAG source
//! exactly once per campaign, no matter how many failure models and
//! estimators fan out over it. The hook is the process-global
//! [`stochdag_dag::prepared_dag_build_count`] counter, incremented by
//! every `PreparedDag` construction — which is why this file holds a
//! single `#[test]`: a second test in this binary would race the
//! counter.

use std::sync::Arc;
use stochdag_engine::{Campaign, ResultCache, SweepSpec, VecSink};

const SPEC: &str = r#"
name = "prepared-once"
seed = 7
pfails = [0.01, 0.001]
lambdas = [0.05]
estimators = ["first-order", "sculli", "spelde:4", "mc:400"]
reference_trials = 800
[[dags]]
kind = "cholesky"
ks = [2, 3]
[[dags]]
kind = "fork-join"
width = 3
depth = 2
"#;

#[test]
fn campaign_builds_each_dag_source_exactly_once() {
    let spec = SweepSpec::from_str_auto(SPEC).unwrap();
    let cache = Arc::new(ResultCache::in_memory());
    let campaign = |spec: &SweepSpec| Campaign::builder(spec.clone()).cache(cache.clone());

    // 3 instances × 3 models × 4 estimators = 36 cells, 9 references.
    let before = stochdag_dag::prepared_dag_build_count();
    let outcome = campaign(&spec)
        .sink(VecSink::default())
        .build()
        .unwrap()
        .run()
        .unwrap();
    let after = stochdag_dag::prepared_dag_build_count();
    assert_eq!(outcome.cells, 36);
    assert_eq!(outcome.references, 9);
    assert_eq!(
        after - before,
        3,
        "one PreparedDag per DAG source, not per cell"
    );

    // A fully-cached re-run still prepares once per source (the
    // preparation is per-campaign state), and nothing more.
    let before = after;
    let again = campaign(&spec).build().unwrap().run().unwrap();
    assert!(again.fully_cached());
    assert_eq!(
        stochdag_dag::prepared_dag_build_count() - before,
        3,
        "cached campaign still prepares each source exactly once"
    );

    // resume-report hashes directly and must not build preparations.
    let before = stochdag_dag::prepared_dag_build_count();
    let report = campaign(&spec).build().unwrap().resume_report().unwrap();
    assert!(report.fully_cached());
    assert_eq!(
        stochdag_dag::prepared_dag_build_count(),
        before,
        "resume-report computes no preparations"
    );
}
