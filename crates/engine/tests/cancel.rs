//! Cooperative cancellation: a [`CancelToken`] stops a campaign at
//! the next unit boundary, the run reports `EngineError::Cancelled`,
//! and everything finished before the stop lands in the cache — so a
//! re-submission over the same cache picks up where the cancelled run
//! left off. This is the engine seam the campaign service's `cancel`
//! request is built on.

use std::sync::Arc;

use stochdag_engine::{
    Campaign, CampaignEvent, CancelToken, EngineError, FnObserver, MultiProcess, ResultCache,
    SweepSpec, VecSink,
};

fn spec(name: &str) -> SweepSpec {
    SweepSpec::from_str_auto(&format!(
        r#"
        name = "{name}"
        seed = 5
        pfails = [0.01, 0.05]
        estimators = ["first-order", "sculli"]
        reference_trials = 1000
        [[dags]]
        kind = "cholesky"
        ks = [2, 3]
        "#
    ))
    .unwrap()
}

#[test]
fn pre_cancelled_token_stops_the_run_before_any_work() {
    let token = CancelToken::new();
    token.cancel();
    let cache = Arc::new(ResultCache::in_memory());
    let err = Campaign::builder(spec("pre"))
        .cache(cache.clone())
        .cancel_token(token)
        .build()
        .unwrap()
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::Cancelled), "{err}");
    assert_eq!(err.kind(), "cancelled");
    assert_eq!(
        cache.hits() + cache.misses(),
        0,
        "no unit may have been evaluated"
    );
}

#[test]
fn mid_run_cancel_stops_cooperatively_and_the_cache_resumes() {
    let cache = Arc::new(ResultCache::in_memory());
    let token = CancelToken::new();

    // Cancel as soon as the first finished cell is observed; the
    // campaign must stop at a later cell boundary instead of
    // completing all 8 cells. One worker thread keeps that
    // deterministic — with a parallel pool, every cell can already be
    // past its cancellation check before the first event lands.
    let trigger = token.clone();
    let err = Campaign::builder(spec("midrun"))
        .cache(cache.clone())
        .jobs(1)
        .cancel_token(token)
        .observer(FnObserver(move |event: &CampaignEvent| {
            if matches!(event, CampaignEvent::Cell { .. }) {
                trigger.cancel();
            }
        }))
        .build()
        .unwrap()
        .run()
        .unwrap_err();
    assert_eq!(err.kind(), "cancelled");

    // Resume: the same spec over the same cache completes, served
    // from whatever the cancelled run finished.
    let outcome = Campaign::builder(spec("midrun"))
        .cache(cache)
        .sink(VecSink::default())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.cells, 8);
    assert_eq!(outcome.rows.len(), 8);
    assert!(
        outcome.cache_hits > 0,
        "the resumed run must reuse the cancelled run's work"
    );
}

#[test]
fn multiprocess_backend_refuses_to_spawn_after_cancel() {
    // The launcher points at a binary that cannot exist: if the
    // backend checked the token *after* spawning, this run would fail
    // with a worker error instead of a clean cancellation.
    let dir = std::env::temp_dir().join(format!("stochdag-cancel-mp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let err = Campaign::builder(spec("mp"))
        .cache(Arc::new(ResultCache::on_disk(dir.join("cache"))))
        .backend(MultiProcess::new(2).launcher("/nonexistent/stochdag-worker", Vec::new()))
        .cancel_token(token)
        .build()
        .unwrap()
        .run()
        .unwrap_err();
    assert_eq!(
        err.kind(),
        "cancelled",
        "cancellation must win over spawning workers: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clones_observe_cancellation_across_threads() {
    let token = CancelToken::new();
    let clone = token.clone();
    let waiter = std::thread::spawn(move || {
        while !clone.is_cancelled() {
            std::thread::yield_now();
        }
        true
    });
    token.cancel();
    assert!(waiter.join().unwrap());
}
