//! Distributed execution invariants, exercised in-process: the shard
//! partition is deterministic and exhaustive, worker shards sharing a
//! disk cache jointly compute exactly what a single-process run would,
//! and the coordinator's merge of replayed event streams is
//! byte-identical to the single-process sink output.
//!
//! Exercises the campaign-facade entry points end to end:
//! [`Campaign::run_shard`] for the worker half and
//! [`merge_event_streams`] for replayed coordinator merges.

use std::io::Cursor;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use stochdag_engine::{
    decode_event, encode_event, merge_event_streams, shard_of, Campaign, CampaignEvent, CsvSink,
    FnObserver, MultiProcess, ProgressReporter, ResultCache, ResultSink, SweepSpec,
};

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stochdag_dist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn campaign() -> SweepSpec {
    SweepSpec::from_str_auto(
        r#"
name = "dist"
seed = 11
pfails = [0.01, 0.001]
estimators = ["first-order", "sculli", "mc:600"]
reference_trials = 1500

[[dags]]
kind = "cholesky"
ks = [2, 3]

[[dags]]
kind = "fork-join"
width = 3
depth = 2
"#,
    )
    .unwrap()
}

/// A cloneable in-memory writer, so CSV bytes survive the campaign
/// consuming its sinks.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run one shard through the campaign facade, collecting its protocol
/// lines (as a worker's stdout would carry them).
fn shard_lines(spec: &SweepSpec, cache_dir: &PathBuf, shard: usize, of: usize) -> Vec<String> {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = lines.clone();
    Campaign::builder(spec.clone())
        .cache(Arc::new(ResultCache::on_disk(cache_dir)))
        .observer(FnObserver(move |ev: &CampaignEvent| {
            sink.lock().unwrap().push(encode_event(ev));
        }))
        .build()
        .unwrap()
        .run_shard(shard, of)
        .unwrap();
    let out = lines.lock().unwrap().clone();
    out
}

fn csv_of_merge(streams: Vec<Vec<String>>) -> (Vec<u8>, stochdag_engine::SweepOutcome) {
    let readers: Vec<Cursor<Vec<u8>>> = streams
        .into_iter()
        .map(|lines| Cursor::new((lines.join("\n") + "\n").into_bytes()))
        .collect();
    let mut csv = CsvSink::new(Vec::new());
    let outcome = {
        let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut csv];
        merge_event_streams(readers, &mut sinks, &mut ProgressReporter::disabled()).unwrap()
    };
    (csv.into_inner(), outcome)
}

#[test]
fn shard_assignment_is_deterministic_and_partitions() {
    let keys: Vec<String> = (0..97).map(|i| format!("{i:032x}")).collect();
    for n in [1, 2, 4, 7] {
        let mut counts = vec![0usize; n];
        for k in &keys {
            let s = shard_of(k, n);
            assert_eq!(s, shard_of(k, n), "deterministic");
            assert!(s < n);
            counts[s] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), keys.len(), "partition");
        if n > 1 {
            assert!(
                counts.iter().all(|&c| c > 0),
                "balanced enough that no shard starves: {counts:?}"
            );
        }
    }
}

#[test]
fn shards_jointly_match_single_process_byte_for_byte() {
    let spec = campaign();

    for workers in [1usize, 2, 4] {
        let dir = scratch(&format!("w{workers}"));
        let cache_dir = dir.join("cache");

        // Distributed fresh run: each "process" is a fresh ResultCache
        // over the shared directory, executed shard by shard.
        let streams: Vec<Vec<String>> = (0..workers)
            .map(|s| shard_lines(&spec, &cache_dir, s, workers))
            .collect();
        let (merged_csv, merged) = csv_of_merge(streams);
        assert_eq!(merged.cells, 18, "3 DAGs x 2 pfails x 3 estimators");

        // Single-process run over the same cache: must be fully served
        // from what the shards stored, with identical bytes.
        let buf = SharedBuf::default();
        let single = Campaign::builder(spec.clone())
            .cache(Arc::new(ResultCache::on_disk(&cache_dir)))
            .sink(CsvSink::new(buf.clone()))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(
            single.fully_cached(),
            "{workers} shard(s) must have computed every work unit ({} misses)",
            single.cache_misses
        );
        assert_eq!(merged.rows, single.rows, "merged rows = single rows");
        assert_eq!(merged_csv, buf.bytes(), "byte-identical CSV");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn shard_streams_cover_every_cell_exactly_once() {
    let spec = campaign();
    let dir = scratch("cover");
    let cache_dir = dir.join("cache");
    let mut seen = std::collections::BTreeSet::new();
    let mut hello_cells = 0usize;
    for s in 0..3 {
        let lines = shard_lines(&spec, &cache_dir, s, 3);
        let events: Vec<CampaignEvent> = lines.iter().map(|l| decode_event(l).unwrap()).collect();
        assert!(
            matches!(events.first(), Some(CampaignEvent::Hello { .. })),
            "hello first"
        );
        assert!(
            matches!(events.last(), Some(CampaignEvent::Done { .. })),
            "done last"
        );
        for ev in events {
            match ev {
                CampaignEvent::Hello { cells, .. } => hello_cells += cells,
                CampaignEvent::Cell { index, .. } => {
                    assert!(seen.insert(index), "cell {index} owned by two shards");
                }
                _ => {}
            }
        }
    }
    assert_eq!(seen.len(), 18, "union of shards covers the campaign");
    assert_eq!(hello_cells, 18);
    assert_eq!(*seen.iter().next_back().unwrap(), 17, "contiguous indices");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coordinator_rejects_broken_streams() {
    let spec = campaign();
    let dir = scratch("broken");
    let cache_dir = dir.join("cache");
    let good = shard_lines(&spec, &cache_dir, 0, 1);

    let run = |streams: Vec<Vec<String>>| {
        let readers: Vec<Cursor<Vec<u8>>> = streams
            .into_iter()
            .map(|l| Cursor::new((l.join("\n") + "\n").into_bytes()))
            .collect();
        let mut sinks: Vec<&mut dyn ResultSink> = vec![];
        merge_event_streams(readers, &mut sinks, &mut ProgressReporter::disabled())
    };

    // A stream that ends before its `done` event (crashed worker).
    let truncated = good[..good.len() - 2].to_vec();
    let err = run(vec![truncated]).unwrap_err();
    assert!(err.to_string().contains("worker"), "{err}");

    // An explicit worker error aborts the merge.
    let failed = vec![
        good[0].clone(),
        encode_event(&CampaignEvent::Error {
            message: "shard exploded".into(),
            kind: Some("worker".into()),
        }),
    ];
    let err = run(vec![failed]).unwrap_err();
    assert!(err.to_string().contains("shard exploded"), "{err}");

    // Garbage on the wire is a hard protocol error.
    let garbage = vec![good[0].clone(), "{not an event".into()];
    let err = run(vec![garbage]).unwrap_err();
    assert!(err.to_string().contains("bad worker event"), "{err}");

    // No workers at all is refused.
    let err = run(vec![]).unwrap_err();
    assert!(err.to_string().contains("at least one worker"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_resume_report_splits_cells_by_shard() {
    let spec = campaign();
    let dir = scratch("resume");
    let cache = Arc::new(ResultCache::on_disk(dir.join("cache")));
    let sharded = |spec: &SweepSpec| {
        Campaign::builder(spec.clone())
            .cache(cache.clone())
            .backend(MultiProcess::new(2))
            .build()
            .unwrap()
    };

    let fresh = sharded(&spec).resume_report().unwrap();
    assert_eq!(fresh.shards.len(), 2);
    assert_eq!(
        fresh.shards.iter().map(|s| s.misses).sum::<usize>(),
        18,
        "shard misses partition the cells"
    );
    assert!(fresh.shards.iter().all(|s| s.hits == 0));

    // Compute shard 0 only, then the report shows exactly that shard
    // as cached and shard 1 as pending.
    let shard0 = Campaign::builder(spec.clone())
        .cache(cache.clone())
        .build()
        .unwrap()
        .run_shard(0, 2)
        .unwrap();
    let after = sharded(&spec).resume_report().unwrap();
    assert_eq!(after.shards[0].hits, shard0.cells);
    assert_eq!(after.shards[0].misses, 0);
    assert_eq!(after.shards[1].hits, 0);
    assert_eq!(after.shards[1].misses, 18 - shard0.cells);
    assert_eq!(
        after.reference_hits, shard0.references,
        "shard 0 cached the references it needed"
    );

    // A zero-worker backend is rejected before any filesystem work.
    assert!(Campaign::builder(spec.clone())
        .backend(MultiProcess::new(0))
        .build()
        .is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
