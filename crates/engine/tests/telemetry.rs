//! Integration coverage of the telemetry layer: deterministic metrics
//! reports, cache-tier accounting across runs, the wire `telemetry`
//! event's emission contract, and the additive-protocol guarantee that
//! the stream-merge replay path (`merge_event_streams`) tolerates
//! newer event vocabularies.

use std::io::Cursor;
use std::sync::{Arc, Mutex};
use stochdag_engine::{
    decode_event, Campaign, CampaignEvent, ProgressReporter, ResultCache, ResultSink, SweepSpec,
    Telemetry, VecSink, WireObserver,
};

/// The engine-side acceptance campaign: 24 cells (2 DAG kinds × 3
/// sizes × 2 estimators × 2 failure probabilities), mirroring
/// `examples/ci_smoke_campaign.toml`.
fn campaign_spec() -> SweepSpec {
    SweepSpec::from_str_auto(
        r#"
name = "telemetry-accept"
seed = 3
pfails = [0.01, 0.001]
estimators = ["first-order", "sculli"]
reference_trials = 2000

[[dags]]
kind = "cholesky"
ks = [2, 3, 4]

[[dags]]
kind = "lu"
ks = [2, 3, 4]
"#,
    )
    .unwrap()
}

/// `Write` handle whose buffer outlives the boxed writer inside an
/// observer.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_with(telemetry: &Telemetry, cache: &Arc<ResultCache>) -> stochdag_engine::SweepOutcome {
    Campaign::builder(campaign_spec())
        .cache(cache.clone())
        .telemetry(telemetry.clone())
        .sink(VecSink::default())
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn cold_run_metrics_are_byte_stable_across_reruns() {
    // Two fresh caches, two cold runs: every timing differs, but the
    // stable section — counts only, deduplicated by global cell index —
    // must be byte-identical. This is the schema/determinism contract
    // behind `sweep --metrics-out`.
    let reports: Vec<_> = (0..2)
        .map(|_| {
            let telemetry = Telemetry::enabled();
            let outcome = run_with(&telemetry, &Arc::new(ResultCache::in_memory()));
            telemetry.report("telemetry-accept", &outcome)
        })
        .collect();
    assert_eq!(reports[0].stable_json(), reports[1].stable_json());

    let stable = reports[0].stable_json();
    assert!(stable.contains("\"total\":24"), "{stable}");
    assert!(stable.contains("\"computed\":24"), "cold run: {stable}");
    assert!(stable.contains("\"memory_hits\":0"), "{stable}");
    assert!(stable.contains("\"disk_hits\":0"), "{stable}");
    assert!(
        stable.contains("\"first-order\":12") && stable.contains("\"sculli\":12"),
        "per-estimator split: {stable}"
    );

    // The full report carries the volatile detail too: spans with real
    // durations, no errors on a clean run.
    let json = reports[0].to_json();
    assert!(json.contains("\"schema_version\":1"), "{json}");
    for span in [
        "campaign",
        "prepare_dag",
        "prepare_estimator",
        "estimate_cell",
        "cache_probe",
        "sink_flush",
    ] {
        assert!(json.contains(&format!("\"{span}\"")), "span {span}: {json}");
    }
    assert!(json.contains("\"errors_by_kind\":{}"), "{json}");
}

#[test]
fn second_run_over_a_shared_cache_is_all_memory_tier() {
    let cache = Arc::new(ResultCache::in_memory());
    let first = Telemetry::enabled();
    run_with(&first, &cache);

    let second = Telemetry::enabled();
    let outcome = run_with(&second, &cache);
    assert_eq!(outcome.cells_memory_hits, 24);
    assert_eq!(outcome.cells_computed, 0);
    let stable = second.report("telemetry-accept", &outcome).stable_json();
    assert!(stable.contains("\"memory_hits\":24"), "{stable}");
    assert!(stable.contains("\"computed\":0"), "{stable}");
}

#[test]
fn wire_stream_carries_one_telemetry_event_only_when_enabled() {
    let run_shard = |telemetry: Telemetry| {
        let buf = SharedBuf::default();
        Campaign::builder(campaign_spec())
            .cache(Arc::new(ResultCache::in_memory()))
            .telemetry(telemetry)
            .observer(WireObserver::new(buf.clone()))
            .build()
            .unwrap()
            .run_shard(0, 1)
            .unwrap();
        buf.text()
            .lines()
            .map(|l| decode_event(l).unwrap_or_else(|e| panic!("{e}")))
            .collect::<Vec<_>>()
    };

    // Disabled (the default): the wire stream is exactly the PR-4
    // protocol — no telemetry event at all.
    let events = run_shard(Telemetry::disabled());
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, CampaignEvent::Telemetry { .. })),
        "disabled telemetry must not widen the wire stream"
    );

    // Enabled: exactly one snapshot, just before `done`, with the
    // shard's collected spans and counters.
    let events = run_shard(Telemetry::enabled());
    let telemetry_events: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::Telemetry { .. }))
        .collect();
    assert_eq!(telemetry_events.len(), 1);
    assert!(
        matches!(events.last(), Some(CampaignEvent::Done { .. })),
        "done stays the stream terminator"
    );
    let CampaignEvent::Telemetry { shard, snapshot } = &events[events.len() - 2] else {
        panic!("telemetry event rides immediately before done");
    };
    assert_eq!(*shard, 0);
    assert!(!snapshot.is_empty(), "snapshot carries the shard's data");
}

#[test]
fn stream_merge_replays_telemetry_and_unknown_events() {
    // Capture a real shard stream with telemetry enabled…
    let buf = SharedBuf::default();
    Campaign::builder(campaign_spec())
        .cache(Arc::new(ResultCache::in_memory()))
        .telemetry(Telemetry::enabled())
        .observer(WireObserver::new(buf.clone()))
        .build()
        .unwrap()
        .run_shard(0, 1)
        .unwrap();
    let mut lines: Vec<String> = buf.text().lines().map(str::to_string).collect();
    assert!(
        lines
            .iter()
            .any(|l| matches!(decode_event(l), Ok(CampaignEvent::Telemetry { .. }))),
        "stream carries the telemetry event"
    );
    // …and splice in an event from an imaginary future protocol rev.
    lines.insert(
        lines.len() - 1,
        r#"{"event":"warp","factor":9}"#.to_string(),
    );

    // The stream-merge replay path must take it in stride: unknown
    // event tags are skipped, not fatal, so older coordinators replay
    // newer worker logs.
    let reader = Cursor::new((lines.join("\n") + "\n").into_bytes());
    let mut vec_sink = VecSink::default();
    let outcome = {
        let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut vec_sink];
        stochdag_engine::merge_event_streams(
            vec![reader],
            &mut sinks,
            &mut ProgressReporter::disabled(),
        )
        .unwrap()
    };
    assert_eq!(outcome.cells, 24);
    assert_eq!(vec_sink.rows.len(), 24);
}
