//! Integration coverage of the [`Campaign`] facade: builder wiring,
//! cache-replay byte identity, dry runs, resume reports, observers,
//! and the worker half.

use std::sync::{Arc, Mutex};
use stochdag_engine::{
    decode_event, Campaign, CampaignEvent, CsvSink, EngineError, EstimatorSpec, FnObserver,
    MultiProcess, ResultCache, SweepSpec, VecSink, WireObserver,
};

fn campaign_spec() -> SweepSpec {
    SweepSpec::from_str_auto(
        r#"
name = "facade"
seed = 11
pfails = [0.01, 0.001]
estimators = ["first-order", "sculli", "mc:600"]
reference_trials = 1500

[[dags]]
kind = "cholesky"
ks = [2, 3]

[[dags]]
kind = "fork-join"
width = 3
depth = 2
"#,
    )
    .unwrap()
}

/// `Write` handle whose buffer outlives the boxed writer inside a sink.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn campaign_rerun_is_fully_cached_and_byte_identical() {
    let spec = campaign_spec();
    let cache = Arc::new(ResultCache::in_memory());

    // First run computes everything.
    let buf = SharedBuf::default();
    let outcome = Campaign::builder(spec.clone())
        .cache(cache.clone())
        .sink(CsvSink::new(buf.clone()))
        .sink(VecSink::default())
        .build()
        .unwrap()
        .run()
        .unwrap();

    // A second campaign over the same cache must be fully served and
    // replay the exact same rows, summary, and CSV bytes.
    let replay_buf = SharedBuf::default();
    let replay = Campaign::builder(spec)
        .cache(cache.clone())
        .sink(CsvSink::new(replay_buf.clone()))
        .build()
        .unwrap()
        .run()
        .unwrap();

    assert!(replay.fully_cached(), "first run fed the replay");
    assert_eq!(outcome.cells, replay.cells);
    assert_eq!(outcome.references, replay.references);
    assert_eq!(outcome.rows, replay.rows, "rows are bit-identical");
    assert_eq!(outcome.summary, replay.summary);
    assert_eq!(buf.bytes(), replay_buf.bytes(), "CSV bytes are identical");
}

#[test]
fn dry_run_expands_without_executing() {
    let campaign = Campaign::builder(campaign_spec()).build().unwrap();
    let dry = campaign.dry_run().unwrap();
    assert_eq!(dry.name, "facade");
    assert_eq!(dry.backend, "in-process");
    assert_eq!(dry.estimators, ["first-order", "sculli", "mc:600"]);
    assert_eq!(dry.instances.len(), 3);
    assert_eq!(dry.instances[0].id, "cholesky:k=2");
    assert!(dry.instances.iter().all(|i| i.tasks > 0));
    assert_eq!(dry.models, 2);
    assert_eq!(dry.cells, 18);
    assert_eq!(dry.references, 6);
    assert_eq!(dry.shard_cells, vec![18], "one in-process shard");

    let sharded = Campaign::builder(campaign_spec())
        .backend(MultiProcess::new(3))
        .build()
        .unwrap();
    let dry = sharded.dry_run().unwrap();
    assert_eq!(dry.shard_cells.len(), 3);
    assert_eq!(dry.shard_cells.iter().sum::<usize>(), 18);

    // Nothing ran: a fresh resume report still sees zero cached cells.
    let report = campaign.resume_report().unwrap();
    assert_eq!(report.total_hits(), 0);
}

#[test]
fn resume_report_follows_the_backend_worker_count() {
    let cache = Arc::new(ResultCache::in_memory());
    let run = Campaign::builder(campaign_spec())
        .cache(cache.clone())
        .build()
        .unwrap();
    run.run().unwrap();

    let sharded = Campaign::builder(campaign_spec())
        .cache(cache.clone())
        .backend(MultiProcess::new(2))
        .build()
        .unwrap();
    let report = sharded.resume_report().unwrap();
    assert!(report.fully_cached());
    assert_eq!(report.shards.len(), 2, "per-shard split under workers=2");
    assert_eq!(report.shards.iter().map(|s| s.hits).sum::<usize>(), 18);
}

#[test]
fn observers_see_the_full_event_stream() {
    let events: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_events = events.clone();
    let outcome = Campaign::builder(campaign_spec())
        .observer(FnObserver(move |ev: &CampaignEvent| {
            let tag = match ev {
                CampaignEvent::Plan { .. } => "plan",
                CampaignEvent::Hello { .. } => "hello",
                CampaignEvent::LeaseStart { .. } => "lease_start",
                CampaignEvent::Reference { .. } => "reference",
                CampaignEvent::Cell { .. } => "cell",
                CampaignEvent::LeaseDone { .. } => "lease_done",
                CampaignEvent::Done { .. } => "done",
                CampaignEvent::Error { .. } => "error",
                CampaignEvent::Telemetry { .. } => "telemetry",
                CampaignEvent::Unknown { .. } => "unknown",
            };
            sink_events.lock().unwrap().push(tag.to_string());
        }))
        .build()
        .unwrap()
        .run()
        .unwrap();
    let seen = events.lock().unwrap();
    assert_eq!(seen.first().map(String::as_str), Some("plan"));
    assert_eq!(seen.get(1).map(String::as_str), Some("hello"));
    assert_eq!(seen.last().map(String::as_str), Some("done"));
    assert_eq!(seen.iter().filter(|t| *t == "cell").count(), outcome.cells);
    assert_eq!(
        seen.iter().filter(|t| *t == "reference").count(),
        outcome.references
    );
}

#[test]
fn run_shard_streams_the_wire_protocol_through_observers() {
    let buf = SharedBuf::default();
    let outcome = Campaign::builder(campaign_spec())
        .observer(WireObserver::new(buf.clone()))
        .build()
        .unwrap()
        .run_shard(0, 2)
        .unwrap();
    assert_eq!(outcome.shard, 0);
    assert_eq!(outcome.shard_count, 2);
    assert!(outcome.cells > 0 && outcome.cells < 18, "a proper subset");

    let text = String::from_utf8(buf.bytes()).unwrap();
    let events: Vec<CampaignEvent> = text
        .lines()
        .map(|l| decode_event(l).unwrap_or_else(|e| panic!("{e}")))
        .collect();
    assert!(matches!(events.first(), Some(CampaignEvent::Hello { .. })));
    assert!(matches!(events.last(), Some(CampaignEvent::Done { .. })));
    let cells = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::Cell { .. }))
        .count();
    assert_eq!(cells, outcome.cells);
}

#[test]
fn builder_rejects_bad_configurations_up_front() {
    let err = Campaign::builder(SweepSpec::default()).build().unwrap_err();
    assert!(matches!(err, EngineError::Spec { .. }), "{err}");

    let mut spec = campaign_spec();
    spec.estimators.push(EstimatorSpec::Dodin { atoms: 1 });
    let err = Campaign::builder(spec).build().unwrap_err();
    assert!(err.to_string().contains("dodin"), "{err}");

    let err = Campaign::builder(campaign_spec())
        .backend(MultiProcess::new(0))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("worker"), "{err}");

    let err = Campaign::builder(campaign_spec())
        .jobs(0)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("jobs"), "{err}");
}

#[test]
fn multiprocess_spawn_failures_surface_as_worker_errors() {
    let err = Campaign::builder(campaign_spec())
        .backend(MultiProcess::new(2).launcher("/nonexistent/stochdag-binary-for-test", vec![]))
        .build()
        .unwrap()
        .run()
        .unwrap_err();
    assert!(
        matches!(err, EngineError::Worker { .. }),
        "spawn failure is a worker error: {err}"
    );
    assert!(err.to_string().contains("spawning sweep worker"), "{err}");
}
