//! Cross-host campaign coordination over a shared-filesystem spool,
//! exercised in-process: a [`SharedFs`] coordinator and [`SpoolWorker`]
//! sessions (threads here, remote `sweep-worker --spool` processes in
//! production) meet in one spool directory, and the merged output must
//! be byte-identical to a single-process run over the same cache —
//! including when a claim goes stale and the coordinator re-queues it.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use stochdag_engine::{
    Campaign, CampaignEvent, CsvSink, FnObserver, ResultCache, SharedFs, SpoolWorker, SweepSpec,
};

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stochdag_spool_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn spec(name: &str) -> SweepSpec {
    SweepSpec::from_str_auto(&format!(
        r#"
        name = "{name}"
        seed = 13
        pfails = [0.01, 0.05]
        estimators = ["first-order", "sculli"]
        reference_trials = 600
        [[dags]]
        kind = "cholesky"
        ks = [2, 3]
        "#
    ))
    .unwrap()
}

/// A cloneable in-memory writer, so CSV bytes survive the campaign
/// consuming its sinks.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn two_spool_workers_match_single_process_byte_for_byte() {
    let dir = scratch("two");
    let spool = dir.join("spool");
    let cache_dir = dir.join("cache");

    // Two worker sessions start first and wait for the campaign to be
    // posted — the normal cross-host launch order.
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let spool = spool.clone();
            std::thread::spawn(move || {
                SpoolWorker::new(&spool)
                    .name(format!("w{i}"))
                    .jobs(1)
                    .max_wait(Duration::from_secs(30))
                    .run()
            })
        })
        .collect();

    let buf = SharedBuf::default();
    let hellos = Arc::new(Mutex::new(Vec::new()));
    let seen = hellos.clone();
    let outcome = Campaign::builder(spec("spool2"))
        .cache(Arc::new(ResultCache::on_disk(&cache_dir)))
        .backend(SharedFs::new(&spool))
        .sink(CsvSink::new(buf.clone()))
        .observer(FnObserver(move |ev: &CampaignEvent| {
            if let CampaignEvent::Hello { shard, jobs, .. } = ev {
                seen.lock().unwrap().push((*shard, *jobs));
            }
        }))
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.cells, 8);
    assert_eq!(outcome.references, 4);

    let summaries: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().unwrap().unwrap())
        .collect();
    assert_eq!(
        summaries.iter().map(|s| s.leases).sum::<usize>(),
        4,
        "the two sessions jointly drained every lease"
    );
    assert_eq!(summaries.iter().map(|s| s.cells).sum::<usize>(), 8);
    // Each worker the coordinator saw announced itself with its jobs
    // handshake. (A worker that registers only after a fast campaign
    // drained never appears — so the count is 1 or 2, never 0.)
    let hellos = hellos.lock().unwrap();
    assert!(
        (1..=2).contains(&hellos.len()),
        "registered workers announce once each: {hellos:?}"
    );
    assert!(hellos.iter().all(|&(_, jobs)| jobs == Some(1)));

    // Single-process replay over the same cache: identical bytes.
    let single = SharedBuf::default();
    let replay = Campaign::builder(spec("spool2"))
        .cache(Arc::new(ResultCache::on_disk(&cache_dir)))
        .sink(CsvSink::new(single.clone()))
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(replay.fully_cached(), "{} misses", replay.cache_misses);
    assert_eq!(buf.bytes(), single.bytes(), "byte-identical CSV");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_claim_is_reclaimed_and_the_campaign_completes() {
    let dir = scratch("stale");
    let spool = dir.join("spool");
    let cache_dir = dir.join("cache");

    // A saboteur that claims the first posted lease and then "dies":
    // the claim file sits in leases/claimed/ with no events behind it,
    // exactly what a worker killed mid-lease leaves on disk.
    let saboteur = {
        let spool = spool.clone();
        std::thread::spawn(move || {
            let open = spool.join("leases").join("open");
            let claimed = spool.join("leases").join("claimed");
            for _ in 0..600 {
                if let Ok(entries) = std::fs::read_dir(&open) {
                    for e in entries.flatten() {
                        let target = claimed.join(e.file_name());
                        if std::fs::rename(e.path(), &target).is_ok() {
                            return true;
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            false
        })
    };

    // One healthy worker drains everything else (and, after the
    // coordinator reclaims the stale claim, the re-queued lease too).
    let worker = {
        let spool = spool.clone();
        std::thread::spawn(move || {
            SpoolWorker::new(&spool)
                .name("healthy")
                .jobs(1)
                .max_wait(Duration::from_secs(30))
                .run()
        })
    };

    let buf = SharedBuf::default();
    let outcome = Campaign::builder(spec("stale"))
        .cache(Arc::new(ResultCache::on_disk(&cache_dir)))
        .backend(SharedFs::new(&spool).lease_timeout(Duration::from_secs(1)))
        .sink(CsvSink::new(buf.clone()))
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.cells, 8, "reclaim must not lose the stale lease");

    assert!(saboteur.join().unwrap(), "saboteur claimed a lease");
    let summary = worker.join().unwrap().unwrap();
    assert_eq!(
        summary.cells, 8,
        "the healthy worker executed every cell, including the reclaimed lease"
    );

    // The interrupted-and-reclaimed campaign still replays
    // byte-identically from its cache.
    let single = SharedBuf::default();
    let replay = Campaign::builder(spec("stale"))
        .cache(Arc::new(ResultCache::on_disk(&cache_dir)))
        .sink(CsvSink::new(single.clone()))
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(replay.fully_cached(), "{} misses", replay.cache_misses);
    assert_eq!(buf.bytes(), single.bytes(), "byte-identical CSV");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_used_spool_directory_refuses_a_second_campaign() {
    let dir = scratch("reuse");
    let spool = dir.join("spool");
    std::fs::create_dir_all(&spool).unwrap();
    std::fs::write(spool.join("spec.json"), b"{}").unwrap();
    let err = Campaign::builder(spec("reuse"))
        .cache(Arc::new(ResultCache::on_disk(dir.join("cache"))))
        .backend(SharedFs::new(&spool).worker_timeout(Duration::from_secs(1)))
        .build()
        .unwrap()
        .run()
        .unwrap_err();
    assert!(
        err.to_string().contains("already hosts a campaign"),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
