//! Domain example: resilience analysis of a tiled Cholesky factorization
//! (the paper's Figure 1 workload family).
//!
//! Sweeps the per-task failure probability and reports how the expected
//! makespan inflates, which kernels dominate the risk, and how the
//! first-order estimate tracks Monte Carlo across the sweep.
//!
//! Run with: `cargo run -p stochdag --release --example cholesky_analysis`

use stochdag::prelude::*;

fn main() {
    let k = 10;
    let timings = KernelTimings::paper_default();
    let dag = cholesky_dag(k, &timings);
    let d_g = longest_path_length(&dag);
    println!(
        "Cholesky k={k}: {} tasks, {} edges, d(G) = {:.4}s, sequential work {:.1}s",
        dag.node_count(),
        dag.edge_count(),
        d_g,
        dag.total_weight()
    );

    println!(
        "\n{:>9} {:>12} {:>12} {:>11} {:>10}",
        "pfail", "E(G) first", "E(G) MC", "rel.err", "slowdown"
    );
    for pfail in [0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0001] {
        let model = FailureModel::from_pfail_for_dag(pfail, &dag);
        let first = first_order_expected_makespan_fast(&dag, &model);
        let mc = MonteCarloEstimator::new(100_000)
            .with_seed(13)
            .run(&dag, &model);
        println!(
            "{pfail:>9} {first:>12.5} {:>12.5} {:>+11.2e} {:>9.3}%",
            mc.mean,
            (first - mc.mean) / mc.mean,
            100.0 * (mc.mean - d_g) / d_g
        );
    }

    // Which kernel carries the makespan risk? Aggregate first-order
    // sensitivities by kernel family.
    let model = FailureModel::from_pfail_for_dag(0.01, &dag);
    let detail = first_order_detailed(&dag, &model);
    let mut by_kernel: std::collections::BTreeMap<String, (usize, f64)> = Default::default();
    for i in dag.nodes() {
        let name = dag.display_name(i);
        let kernel = name.split('_').next().unwrap_or("?").to_string();
        let e = by_kernel.entry(kernel).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += detail.task_contribution[i.index()];
    }
    let total: f64 = detail.task_contribution.iter().sum();
    println!("\nmakespan-risk breakdown at pfail=0.01 (E(G) - d(G) = {total:.5}s):");
    for (kernel, (count, contrib)) in by_kernel {
        println!(
            "  {kernel:<6} {count:>4} tasks  {contrib:>9.5}s  ({:>5.1}% of risk)",
            100.0 * contrib / total
        );
    }

    // Tail behaviour: Monte Carlo percentiles vs the Dodin distribution.
    let mc = MonteCarloEstimator::new(200_000)
        .with_seed(17)
        .run(&dag, &model);
    let dodin_dist = DodinEstimator::scalable().makespan_dist(&dag, &model);
    println!("\nmakespan distribution at pfail=0.01:");
    println!(
        "  MC    mean {:.4}  min {:.4}  max {:.4}",
        mc.mean, mc.min, mc.max
    );
    println!(
        "  Dodin mean {:.4}  p50 {:.4}  p99 {:.4}  ({} support atoms)",
        dodin_dist.mean(),
        dodin_dist.quantile(0.5),
        dodin_dist.quantile(0.99),
        dodin_dist.len()
    );
}
