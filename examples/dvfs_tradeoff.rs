//! Domain example: the DVFS energy/resilience/time trade-off behind the
//! paper's silent-error motivation (its equation (1)).
//!
//! Lowering the processor speed saves dynamic power (`∝ s³`) but raises
//! the silent-error rate exponentially — so the *expected* makespan and
//! the *expected* energy both pick up re-execution terms. The
//! first-order approximation makes the whole sweep analytic.
//!
//! Run with: `cargo run -p stochdag --release --example dvfs_tradeoff`

use stochdag::prelude::*;

fn main() {
    let dag = qr_dag(8, &KernelTimings::paper_default());
    println!(
        "QR k=8: {} tasks, d(G) = {:.4}s at full speed\n",
        dag.node_count(),
        longest_path_length(&dag)
    );

    // Paper eq. (1): λ(s) = λ0 · 10^{d (s_max − s)/(s_max − s_min)}.
    let dvfs = DvfsModel::new(1e-4, 3.0, 0.5, 1.0);
    let power = PowerModel {
        p_static: 0.3,
        p_dyn: 1.0,
    };
    let speeds: Vec<f64> = (0..=10).map(|i| 0.5 + 0.05 * i as f64).collect();
    let points = speed_tradeoff(&dag, &dvfs, &power, &speeds);

    println!(
        "{:>6} {:>11} {:>14} {:>14} {:>13}",
        "speed", "lambda(s)", "E[makespan]", "E[work]", "E[energy]"
    );
    let mut best: Option<&TradeoffPoint> = None;
    for p in &points {
        println!(
            "{:>6.2} {:>11.3e} {:>13.4}s {:>13.4}s {:>13.4}",
            p.speed, p.lambda, p.expected_makespan, p.expected_work, p.expected_energy
        );
        if best.is_none_or(|b| p.expected_energy < b.expected_energy) {
            best = Some(p);
        }
    }
    let best = best.expect("non-empty sweep");
    println!(
        "\nenergy-optimal operating point: s = {:.2} (E = {:.4}, {:.1}% slower than full speed)",
        best.speed,
        best.expected_energy,
        100.0 * (best.expected_makespan / points.last().unwrap().expected_makespan - 1.0)
    );

    // Cross-check the first-order makespans against Monte Carlo at the
    // two extremes of the sweep.
    for p in [&points[0], points.last().unwrap()] {
        let mut scaled = dag.clone();
        for v in dag.nodes() {
            scaled.set_weight(v, dag.weight(v) * (dvfs.s_max / p.speed));
        }
        let mc = MonteCarloEstimator::new(100_000)
            .with_seed(3)
            .run(&scaled, &FailureModel::new(p.lambda));
        println!(
            "check s={:.2}: first-order {:.4} vs MC {:.4} ({:+.2e} rel)",
            p.speed,
            p.expected_makespan,
            mc.mean,
            (p.expected_makespan - mc.mean) / mc.mean
        );
    }
}
