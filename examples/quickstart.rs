//! Quickstart: build a task graph, calibrate a silent-error model, and
//! compare every estimator against Monte Carlo.
//!
//! Run with: `cargo run -p stochdag --release --example quickstart`

use stochdag::prelude::*;

fn main() {
    // A small image-processing-style pipeline: load, three parallel
    // filters of different costs, merge, store.
    let mut b = DagBuilder::new();
    let load = b.add_task("load", 0.4);
    let f1 = b.add_task("filter-blur", 1.2);
    let f2 = b.add_task("filter-edge", 2.0);
    let f3 = b.add_task("filter-tone", 0.9);
    let merge = b.add_task("merge", 0.6);
    let store = b.add_task("store", 0.3);
    for f in [f1, f2, f3] {
        b.add_dep(load, f);
        b.add_dep(f, merge);
    }
    b.add_dep(merge, store);
    let dag = b.build().expect("valid DAG");

    println!(
        "pipeline: {} tasks, {} edges",
        dag.node_count(),
        dag.edge_count()
    );
    println!(
        "failure-free makespan d(G) = {:.3}s",
        longest_path_length(&dag)
    );

    // One silent error per mille for the average task — the paper's
    // middle calibration point.
    let model = FailureModel::from_pfail_for_dag(0.001, &dag);
    println!(
        "failure model: lambda = {:.5}/s (MTBF {:.0}s)\n",
        model.lambda,
        model.mtbf()
    );

    // Ground truth, then every analytical estimator.
    let mc = MonteCarloEstimator::new(300_000)
        .with_seed(7)
        .estimate(&dag, &model);
    println!(
        "{:<14} {:>10.6}  (±{:.1e}, {:?})",
        "MonteCarlo",
        mc.value,
        mc.std_error.unwrap_or(0.0),
        mc.elapsed
    );
    let estimators: Vec<Box<dyn Estimator>> = vec![
        Box::new(FirstOrderEstimator::fast()),
        Box::new(SecondOrderEstimator),
        Box::new(SculliEstimator),
        Box::new(CorLcaEstimator),
        Box::new(CovarianceNormalEstimator),
        Box::new(DodinEstimator::new()),
    ];
    for est in estimators {
        let e = est.estimate(&dag, &model);
        println!(
            "{:<14} {:>10.6}  (rel. err {:+.2e}, {:?})",
            e.name,
            e.value,
            e.relative_error(mc.value),
            e.elapsed
        );
    }

    // The per-task view the scheduler consumes: which task's failure
    // would actually lengthen the run?
    let detail = first_order_detailed(&dag, &model);
    println!("\nper-task makespan sensitivity (top 3):");
    let mut tasks: Vec<(usize, f64)> = detail
        .task_contribution
        .iter()
        .copied()
        .enumerate()
        .collect();
    tasks.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (idx, c) in tasks.into_iter().take(3) {
        println!(
            "  {:<14} contributes {:.2e}s to E(G) - d(G)",
            dag.display_name(NodeId::from_index(idx)),
            c
        );
    }
}
