//! Embedding the engine as a library: build a campaign entirely in
//! code — typed estimator specs, no spec files, no CLI — inspect it
//! with a dry run, execute it in-process, and re-run it from the
//! shared cache.
//!
//! Run with: `cargo run -p stochdag --release --example embed_campaign`

use std::sync::Arc;
use stochdag::prelude::*;
use stochdag_engine::{Campaign, CampaignEvent, DagSpec, FnObserver};

fn main() {
    // The campaign: two DAG families × two failure probabilities ×
    // three estimators, with typed estimator configuration — knobs are
    // struct fields, not ":arg" string suffixes.
    let spec = SweepSpec {
        name: "embedded".into(),
        seed: 7,
        pfails: vec![0.01, 0.001],
        lambdas: vec![],
        estimators: vec![
            EstimatorSpec::FirstOrder,
            EstimatorSpec::Sculli,
            EstimatorSpec::Mc { trials: 2_000 },
        ],
        reference_trials: 20_000,
        reference_sampling: SamplingModel::Geometric,
        jobs: None,
        scenarios: vec![],
        dags: vec![
            DagSpec::Factorization {
                class: FactorizationClass::Cholesky,
                ks: vec![3, 4],
            },
            DagSpec::ForkJoin {
                width: 4,
                depth: 3,
                weight: 1.0,
            },
        ],
    };

    // Keep an Arc to the cache: the campaign shares it, and this
    // handle stays usable afterwards (resume reports, GC, re-runs).
    let cache = Arc::new(ResultCache::in_memory());

    // What would run? (Nothing executes here.)
    let dry = Campaign::builder(spec.clone())
        .cache(cache.clone())
        .build()
        .expect("valid campaign")
        .dry_run()
        .expect("expandable campaign");
    println!(
        "dry run: {} instances x {} models x {} estimators = {} cells (+{} references)",
        dry.instances.len(),
        dry.models,
        dry.estimators.len(),
        dry.cells,
        dry.references
    );

    // Execute, watching completions through an observer subscription.
    let outcome = Campaign::builder(spec.clone())
        .cache(cache.clone())
        .observer(FnObserver(|ev: &CampaignEvent| {
            if let CampaignEvent::Cell { row, cached, .. } = ev {
                eprintln!(
                    "  cell {} / {} / {}{}",
                    row.dag,
                    row.model,
                    row.estimator,
                    if *cached { " (cached)" } else { "" }
                );
            }
        }))
        .build()
        .expect("valid campaign")
        .run()
        .expect("campaign runs");
    println!(
        "ran {} cells + {} references in {:.2?}",
        outcome.cells, outcome.references, outcome.wall
    );
    for s in &outcome.summary {
        println!(
            "  {:<12} mean|rel err| {:.2e}  max {:.2e}",
            s.estimator, s.mean_abs_rel_error, s.max_abs_rel_error
        );
    }

    // The cache handle shows a re-run would be free…
    let report = Campaign::builder(spec.clone())
        .cache(cache.clone())
        .build()
        .expect("valid campaign")
        .resume_report()
        .expect("probe-only report");
    assert!(report.fully_cached());
    println!("resume report: {} work units cached", report.total_hits());

    // …and it is: same rows, zero computation.
    let again = Campaign::builder(spec)
        .cache(cache)
        .build()
        .expect("valid campaign")
        .run()
        .expect("cached campaign runs");
    assert!(again.fully_cached());
    assert_eq!(again.rows, outcome.rows);
    println!("re-run served {} cache hits, 0 misses", again.cache_hits);
}
