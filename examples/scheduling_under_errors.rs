//! Domain example: failure-aware list scheduling — the application the
//! paper's introduction motivates.
//!
//! Compares priority policies (classical bottom level vs the
//! first-order failure-aware refinements) on a limited-processor
//! LU factorization run under silent errors, and shows HEFT on a
//! heterogeneous platform.
//!
//! Run with: `cargo run -p stochdag --release --example scheduling_under_errors`

use stochdag::prelude::*;

fn main() {
    let k = 10;
    let dag = lu_dag(k, &KernelTimings::paper_default());
    let pfail = 0.02;
    let model = FailureModel::from_pfail_for_dag(pfail, &dag);
    let processors = 8;
    let replicas = 2000;

    println!(
        "LU k={k}: {} tasks on {processors} processors, pfail={pfail} per average task",
        dag.node_count()
    );
    println!(
        "bounds: d(G) = {:.4}s (unlimited procs, no failures), serial work = {:.1}s\n",
        longest_path_length(&dag),
        dag.total_weight()
    );

    let cmp = compare_policies(&dag, &model, processors, &Priority::ALL, replicas, 99);
    let baseline = cmp
        .stats
        .iter()
        .find(|s| s.policy == Priority::BottomLevel)
        .expect("baseline present")
        .mean_makespan;
    println!(
        "{:<26} {:>12} {:>10} {:>12} {:>10}",
        "policy", "mean", "stderr", "vs CP-sched", "failures"
    );
    for s in &cmp.stats {
        println!(
            "{:<26} {:>12.5} {:>10.2e} {:>+11.3}% {:>10.2}",
            s.policy.name(),
            s.mean_makespan,
            s.std_error,
            100.0 * (s.mean_makespan - baseline) / baseline,
            s.mean_failures
        );
    }
    println!(
        "best policy over {replicas} replicas: {}\n",
        cmp.best().policy.name()
    );

    // Heterogeneous platform: half fast, half slow processors, HEFT
    // placement replayed under failures.
    let speeds: Vec<f64> = (0..processors)
        .map(|p| if p < processors / 2 { 2.0 } else { 1.0 })
        .collect();
    let heft = heft_schedule(&dag, &speeds, None);
    println!(
        "HEFT on {:?}: failure-free makespan {:.4}s (utilization {:.0}%)",
        speeds,
        heft.schedule.makespan(),
        100.0 * heft.schedule.utilization()
    );
    let assignment: Vec<usize> = heft.schedule.entries.iter().map(|e| e.processor).collect();
    let mut mean = 0.0;
    let reps = 500;
    for seed in 0..reps {
        let cfg = SimConfig {
            speeds: speeds.clone(),
            policy: Priority::BottomLevel,
            seed,
            assignment: Some(assignment.clone()),
        };
        mean += simulate_execution(&dag, &model, &cfg).makespan();
    }
    mean /= reps as f64;
    println!(
        "HEFT placement under silent errors: mean realized makespan {:.4}s (+{:.2}%)",
        mean,
        100.0 * (mean - heft.schedule.makespan()) / heft.schedule.makespan()
    );
}
