//! Methodology example: empirical verification of the first-order
//! error bound on DAG families *beyond* the paper's three workloads.
//!
//! The approximation neglects `O(λ²)` terms, so halving λ should cut the
//! error against the exact/ground-truth expectation by ~4×. This example
//! measures that scaling on synthetic families (layered random,
//! Erdős–Rényi, fork-join, diamond mesh) — structures with very
//! different path statistics from tiled factorizations.
//!
//! Run with: `cargo run -p stochdag --release --example accuracy_study`

use stochdag::prelude::*;

fn main() {
    let families: Vec<(&str, Dag)> = vec![
        (
            "layered 6x5",
            layered_random_dag(
                &LayeredConfig {
                    layers: 6,
                    width: 5,
                    edge_prob: 0.4,
                    weight_range: (0.5, 2.0),
                },
                11,
            ),
        ),
        (
            "erdos-renyi n=40 p=0.15",
            erdos_renyi_dag(40, 0.15, (0.5, 2.0), 22),
        ),
        ("fork-join 8x4", fork_join_dag(8, 4, 1.0)),
        ("diamond mesh 6x6", diamond_mesh_dag(6, 6, (0.5, 1.5), 33)),
    ];

    for (name, dag) in &families {
        println!(
            "\n=== {name}: {} tasks, {} edges, d(G) = {:.3} ===",
            dag.node_count(),
            dag.edge_count(),
            longest_path_length(dag)
        );
        println!(
            "{:>10} {:>13} {:>13} {:>12} {:>8}",
            "lambda", "MC (2-state)", "first order", "error", "ratio"
        );
        let mut prev_err: Option<f64> = None;
        for exp in 1..=4 {
            let lambda = 0.1 / 2f64.powi(exp);
            let model = FailureModel::new(lambda);
            // 2-state sampling isolates the analytical expansion from
            // the at-most-one-re-execution model truncation.
            let mc = MonteCarloEstimator::new(400_000)
                .with_seed(5)
                .with_sampling(SamplingModel::TwoState)
                .run(dag, &model);
            let first = first_order_expected_makespan_fast(dag, &model);
            let err = (first - mc.mean).abs();
            let ratio = prev_err.map_or(f64::NAN, |p| p / err.max(1e-12));
            println!(
                "{lambda:>10.5} {:>13.6} {first:>13.6} {err:>12.2e} {:>8}",
                mc.mean,
                if ratio.is_nan() {
                    "-".to_string()
                } else {
                    format!("{ratio:.1}x")
                },
            );
            prev_err = Some(err);
        }
        println!("(ratio ≈ 4x per halving of λ confirms the O(λ²) error bound,");
        println!(
            " up to the Monte-Carlo noise floor of ~{:.0e})",
            400_000f64.sqrt().recip()
        );
    }
}
