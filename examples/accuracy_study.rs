//! Methodology example: empirical verification of the first-order
//! error bound on DAG families *beyond* the paper's three workloads —
//! now expressed as one declarative sweep on the scenario engine.
//!
//! The approximation neglects `O(λ²)` terms, so halving λ should cut
//! the error against the Monte-Carlo expectation by ~4×. The engine
//! runs the whole (family × λ) grid in parallel with a shared
//! Monte-Carlo reference per scenario (2-state sampling isolates the
//! analytical expansion from the model truncation), and the rows come
//! back in deterministic grid order, ready for the ratio analysis.
//!
//! Run with: `cargo run -p stochdag --release --example accuracy_study`

use stochdag::prelude::*;
use stochdag_engine::{Campaign, DagSpec, EstimatorSpec};

fn main() {
    // λ = 0.05, 0.025, 0.0125, 0.00625 — each halving should divide
    // the first-order error by ~4.
    let lambdas: Vec<f64> = (1..=4).map(|e| 0.1 / 2f64.powi(e)).collect();
    let spec = SweepSpec {
        name: "accuracy-study".into(),
        seed: 5,
        pfails: vec![],
        lambdas: lambdas.clone(),
        estimators: vec![EstimatorSpec::FirstOrder],
        reference_trials: 400_000,
        reference_sampling: SamplingModel::TwoState,
        jobs: None,
        scenarios: vec![],
        dags: vec![
            DagSpec::Layered {
                layers: vec![6],
                width: 5,
                edge_prob: 0.4,
                weight_range: (0.5, 2.0),
                seed: 11,
            },
            DagSpec::ErdosRenyi {
                ns: vec![40],
                p: 0.15,
                weight_range: (0.5, 2.0),
                seed: 22,
            },
            DagSpec::ForkJoin {
                width: 8,
                depth: 4,
                weight: 1.0,
            },
            DagSpec::DiamondMesh {
                rows: 6,
                cols: 6,
                weight_range: (0.5, 1.5),
                seed: 33,
            },
        ],
    };

    let outcome = Campaign::builder(spec)
        .build()
        .expect("valid campaign")
        .run()
        .expect("sweep runs");

    // Rows arrive scenario-major: for each DAG, the λ axis in order.
    for family in outcome.rows.chunks(lambdas.len()) {
        let head = &family[0];
        println!(
            "\n=== {}: {} tasks, {} edges ===",
            head.dag, head.tasks, head.edges
        );
        println!(
            "{:>10} {:>13} {:>13} {:>12} {:>8}",
            "lambda", "MC (2-state)", "first order", "error", "ratio"
        );
        let mut prev_err: Option<f64> = None;
        for row in family {
            let err = (row.value - row.reference).abs();
            let ratio = prev_err.map_or(f64::NAN, |p| p / err.max(1e-12));
            println!(
                "{:>10.5} {:>13.6} {:>13.6} {err:>12.2e} {:>8}",
                row.lambda,
                row.reference,
                row.value,
                if ratio.is_nan() {
                    "-".to_string()
                } else {
                    format!("{ratio:.1}x")
                },
            );
            prev_err = Some(err);
        }
        println!("(ratio ≈ 4x per halving of λ confirms the O(λ²) error bound,");
        println!(
            " up to the Monte-Carlo noise floor of ~{:.0e})",
            400_000f64.sqrt().recip()
        );
    }
    eprintln!(
        "\nengine: {} cells + {} references in {:.2?}",
        outcome.cells, outcome.references, outcome.wall
    );
}
